"""Maximum-weight bipartite matching.

Section 3.5 of the paper formulates post-insertion as a maximum weighted
matching between "additional characters" and stencil rows (at most one
inserted character per row).  This module implements the matching substrate
from scratch as a successive-shortest-augmenting-path assignment algorithm
(a sparse Kuhn–Munkres / Hungarian variant) and is cross-checked against
NetworkX in the test suite.

Three interchangeable solvers sit behind :func:`max_weight_matching`:

* ``"numpy"`` (default) — the Hungarian algorithm with the augmenting-path
  inner loops vectorized over NumPy slack arrays.  Bit-identical to the
  pure-Python solver (same operations, same tie-breaking), roughly an order
  of magnitude faster on dense instances.
* ``"python"`` — the original pure-Python implementation; kept as the
  reference oracle per the PERFORMANCE.md lockstep rule.
* ``"scipy"`` — ``scipy.optimize.linear_sum_assignment`` on the padded
  weight matrix.  Fastest, but ties may be broken differently (the matching
  *weight* is always identical — asserted in the test suite), so it is an
  opt-in fast path rather than the default.
"""

from __future__ import annotations

import math
from typing import Hashable, Mapping, Sequence, TypeVar

import numpy as np

__all__ = ["max_weight_matching", "matching_weight"]

L = TypeVar("L", bound=Hashable)
R = TypeVar("R", bound=Hashable)

_METHODS = ("numpy", "python", "scipy")


def max_weight_matching(
    weights: Mapping[tuple[L, R], float],
    method: str = "numpy",
) -> dict[L, R]:
    """Maximum-weight matching of a bipartite graph given by an edge-weight map.

    Parameters
    ----------
    weights:
        ``{(left, right): weight}``.  Only edges present in the map may be
        matched; weights may be any finite floats.  Edges with non-positive
        weight are allowed but will only be used if they increase the total.
    method:
        ``"numpy"`` (default), ``"python"`` (reference implementation), or
        ``"scipy"`` (``linear_sum_assignment`` fast path; equal weight,
        possibly different tie-breaking).

    Returns
    -------
    dict
        ``{left: right}`` for the matched pairs.  Vertices may stay unmatched
        (maximum *weight*, not maximum cardinality: an edge is only used when
        it improves the objective).
    """
    if method not in _METHODS:
        raise ValueError(f"unknown matching method {method!r}; expected one of {_METHODS}")
    if not weights:
        return {}

    left_nodes: list[L] = sorted({l for l, _ in weights}, key=repr)
    right_nodes: list[R] = sorted({r for _, r in weights}, key=repr)
    left_index = {l: i for i, l in enumerate(left_nodes)}
    right_index = {r: j for j, r in enumerate(right_nodes)}

    n_left = len(left_nodes)
    n_right = len(right_nodes)

    # Assignment-problem reduction: pad to a square matrix where "unmatched"
    # corresponds to a zero-weight dummy assignment, then run the Hungarian
    # algorithm on costs = (max_weight - weight).
    size = n_left + n_right  # enough dummies so every real vertex can opt out
    weight_matrix = np.zeros((size, size))
    for (l, r), w in weights.items():
        weight_matrix[left_index[l], right_index[r]] = max(w, 0.0)

    if method == "scipy":
        assignment = _assignment_scipy(weight_matrix)
    elif method == "python":
        assignment = _hungarian_max_scalar([list(row) for row in weight_matrix])
    else:
        assignment = _hungarian_max(weight_matrix)

    result: dict[L, R] = {}
    for i, j in enumerate(assignment):
        if i < n_left and j is not None and j < n_right:
            l, r = left_nodes[i], right_nodes[j]
            if (l, r) in weights and weights[(l, r)] > 0:
                result[l] = r
    return result


def matching_weight(
    matching: Mapping[L, R], weights: Mapping[tuple[L, R], float]
) -> float:
    """Total weight of a matching under the given edge weights."""
    return float(sum(weights[(l, r)] for l, r in matching.items()))


def _assignment_scipy(weight_matrix: np.ndarray) -> list[int | None]:
    """``linear_sum_assignment`` fast path (optional; equal total weight)."""
    try:
        from scipy.optimize import linear_sum_assignment
    except ImportError:  # pragma: no cover — scipy is a hard dep elsewhere
        return _hungarian_max(weight_matrix)
    rows, cols = linear_sum_assignment(weight_matrix, maximize=True)
    assignment: list[int | None] = [None] * len(weight_matrix)
    for i, j in zip(rows, cols):
        assignment[int(i)] = int(j)
    return assignment


def _hungarian_max(weight_matrix: np.ndarray) -> list[int | None]:
    """Hungarian algorithm maximizing total weight on a square matrix.

    Returns ``assignment[row] = column``.  Implementation follows the O(n^3)
    potentials formulation (Jonker–Volgenant style shortest augmenting paths)
    on the cost matrix ``max - weight``, with the two O(n) inner loops of
    each augmenting step — the slack (``minv``) update and the potential
    update — vectorized over NumPy arrays.  Operation-for-operation (and
    tie-break-for-tie-break: ``argmin`` keeps the first minimum exactly like
    the scalar scan) identical to :func:`_hungarian_max_scalar`.
    """
    n = len(weight_matrix)
    if n == 0:
        return []
    w = np.asarray(weight_matrix, dtype=float)
    cost = w.max() - w

    # Potentials and matching arrays use 1-based indexing internally.
    u = np.zeros(n + 1)
    v = np.zeros(n + 1)
    p = np.zeros(n + 1, dtype=int)  # p[j] = row matched to column j
    way = np.zeros(n + 1, dtype=int)
    inf = math.inf

    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = np.full(n + 1, inf)
        used = np.zeros(n + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = p[j0]
            # Slack update over all unused columns at once.
            cur = cost[i0 - 1] - u[i0] - v[1:]
            free = ~used[1:]
            better = free & (cur < minv[1:])
            if better.any():
                minv[1:][better] = cur[better]
                way[1:][better] = j0
            masked = np.where(free, minv[1:], inf)
            j1 = int(masked.argmin()) + 1
            delta = masked[j1 - 1]
            # Potential update: every used column's matched row is distinct
            # (they form the alternating tree), so fancy indexing is safe.
            u[p[used]] += delta
            v[used] -= delta
            minv[~used] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0:
            j1 = int(way[j0])
            p[j0] = p[j1]
            j0 = j1

    assignment: list[int | None] = [None] * n
    for j in range(1, n + 1):
        if p[j]:
            assignment[p[j] - 1] = j - 1
    return assignment


def _hungarian_max_scalar(weight_matrix: Sequence[Sequence[float]]) -> list[int | None]:
    """Pure-Python reference implementation of :func:`_hungarian_max`."""
    n = len(weight_matrix)
    if n == 0:
        return []
    max_weight = max(max(row) for row in weight_matrix)
    cost = [[max_weight - w for w in row] for row in weight_matrix]

    # Potentials and matching arrays use 1-based indexing internally.
    u = [0.0] * (n + 1)
    v = [0.0] * (n + 1)
    p = [0] * (n + 1)  # p[j] = row matched to column j
    way = [0] * (n + 1)

    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = [math.inf] * (n + 1)
        used = [False] * (n + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = math.inf
            j1 = 0
            for j in range(1, n + 1):
                if used[j]:
                    continue
                cur = cost[i0 - 1][j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(n + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    assignment: list[int | None] = [None] * n
    for j in range(1, n + 1):
        if p[j]:
            assignment[p[j] - 1] = j - 1
    return assignment
