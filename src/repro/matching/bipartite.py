"""Maximum-weight bipartite matching.

Section 3.5 of the paper formulates post-insertion as a maximum weighted
matching between "additional characters" and stencil rows (at most one
inserted character per row).  This module implements the matching substrate
from scratch as a successive-shortest-augmenting-path assignment algorithm
(a sparse Kuhn–Munkres / Hungarian variant) and is cross-checked against
NetworkX in the test suite.
"""

from __future__ import annotations

import math
from typing import Hashable, Mapping, Sequence, TypeVar

__all__ = ["max_weight_matching", "matching_weight"]

L = TypeVar("L", bound=Hashable)
R = TypeVar("R", bound=Hashable)


def max_weight_matching(
    weights: Mapping[tuple[L, R], float],
) -> dict[L, R]:
    """Maximum-weight matching of a bipartite graph given by an edge-weight map.

    Parameters
    ----------
    weights:
        ``{(left, right): weight}``.  Only edges present in the map may be
        matched; weights may be any finite floats.  Edges with non-positive
        weight are allowed but will only be used if they increase the total.

    Returns
    -------
    dict
        ``{left: right}`` for the matched pairs.  Vertices may stay unmatched
        (maximum *weight*, not maximum cardinality: an edge is only used when
        it improves the objective).
    """
    if not weights:
        return {}

    left_nodes: list[L] = sorted({l for l, _ in weights}, key=repr)
    right_nodes: list[R] = sorted({r for _, r in weights}, key=repr)
    left_index = {l: i for i, l in enumerate(left_nodes)}
    right_index = {r: j for j, r in enumerate(right_nodes)}

    n_left = len(left_nodes)
    n_right = len(right_nodes)

    # Assignment-problem reduction: pad to a square matrix where "unmatched"
    # corresponds to a zero-weight dummy assignment, then run the Hungarian
    # algorithm on costs = (max_weight - weight).
    size = n_left + n_right  # enough dummies so every real vertex can opt out
    weight_matrix = [[0.0] * size for _ in range(size)]
    for (l, r), w in weights.items():
        weight_matrix[left_index[l]][right_index[r]] = max(w, 0.0)

    assignment = _hungarian_max(weight_matrix)

    result: dict[L, R] = {}
    for i, j in enumerate(assignment):
        if i < n_left and j is not None and j < n_right:
            l, r = left_nodes[i], right_nodes[j]
            if (l, r) in weights and weights[(l, r)] > 0:
                result[l] = r
    return result


def matching_weight(
    matching: Mapping[L, R], weights: Mapping[tuple[L, R], float]
) -> float:
    """Total weight of a matching under the given edge weights."""
    return float(sum(weights[(l, r)] for l, r in matching.items()))


def _hungarian_max(weight_matrix: Sequence[Sequence[float]]) -> list[int | None]:
    """Hungarian algorithm maximizing total weight on a square matrix.

    Returns ``assignment[row] = column``.  Implementation follows the O(n^3)
    potentials formulation (Jonker–Volgenant style shortest augmenting paths)
    on the cost matrix ``max - weight``.
    """
    n = len(weight_matrix)
    if n == 0:
        return []
    max_weight = max(max(row) for row in weight_matrix)
    cost = [[max_weight - w for w in row] for row in weight_matrix]

    # Potentials and matching arrays use 1-based indexing internally.
    u = [0.0] * (n + 1)
    v = [0.0] * (n + 1)
    p = [0] * (n + 1)  # p[j] = row matched to column j
    way = [0] * (n + 1)

    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = [math.inf] * (n + 1)
        used = [False] * (n + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = math.inf
            j1 = 0
            for j in range(1, n + 1):
                if used[j]:
                    continue
                cur = cost[i0 - 1][j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(n + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    assignment: list[int | None] = [None] * n
    for j in range(1, n + 1):
        if p[j]:
            assignment[p[j] - 1] = j - 1
    return assignment
