"""Matching substrate (maximum-weight bipartite matching)."""

from repro.matching.bipartite import matching_weight, max_weight_matching

__all__ = ["max_weight_matching", "matching_weight"]
