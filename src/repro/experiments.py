"""Reproduction entry points for every table and figure of the paper.

Each function regenerates one experiment of Section 5 and returns plain data
structures; the CLI prints them, the benchmark harness times them, and
``EXPERIMENTS.md`` records representative outputs.

* :func:`run_table3`  — 1DOSP comparison (Greedy[24], Heur[24], [25]-style, E-BLOW),
* :func:`run_table4`  — 2DOSP comparison (Greedy[24], SA[24], E-BLOW),
* :func:`run_table5`  — exact ILP vs E-BLOW on tiny instances,
* :func:`run_fig5`    — unsolved characters per successive-rounding iteration,
* :func:`run_fig6`    — distribution of the last LP's assignment values,
* :func:`run_fig11_12` — E-BLOW-0 vs E-BLOW-1 ablation (quality and runtime).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.api import plan as run_plan
from repro.evaluation import Comparison, run_comparison
from repro.runtime.jobs import PlannerSpec
from repro.workloads import (
    SUITE_1D,
    SUITE_1M,
    SUITE_1T,
    SUITE_2D,
    SUITE_2M,
    SUITE_2T,
    default_scale,
)

__all__ = [
    "TABLE3_CASES",
    "TABLE4_CASES",
    "TABLE5_1D_CASES",
    "TABLE5_2D_CASES",
    "planners_table3",
    "planners_table4",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_fig5",
    "run_fig6",
    "run_fig11_12",
]

TABLE3_CASES: tuple[str, ...] = tuple(SUITE_1D) + tuple(SUITE_1M)
TABLE4_CASES: tuple[str, ...] = tuple(SUITE_2D) + tuple(SUITE_2M)
TABLE5_1D_CASES: tuple[str, ...] = tuple(SUITE_1T)
TABLE5_2D_CASES: tuple[str, ...] = tuple(SUITE_2T)


def planners_table3() -> Mapping[str, PlannerSpec]:
    """Planner specs for the Table 3 comparison (picklable, pool-ready)."""
    return {
        "greedy[24]": PlannerSpec("greedy-1d"),
        "heur[24]": PlannerSpec("heur-1d"),
        "rows[25]": PlannerSpec("rows-1d"),
        "e-blow": PlannerSpec("eblow-1d"),
    }


def planners_table4() -> Mapping[str, PlannerSpec]:
    """Planner specs for the Table 4 comparison (picklable, pool-ready)."""
    return {
        "greedy[24]": PlannerSpec("greedy-2d"),
        "sa[24]": PlannerSpec("sa-2d"),
        "e-blow": PlannerSpec("eblow-2d"),
    }


def run_table3(
    cases: Sequence[str] | None = None, scale: float | None = None, jobs: int = 1
) -> Comparison:
    """Reproduce Table 3 (1DOSP comparison) on the given cases."""
    cases = list(cases) if cases is not None else list(TABLE3_CASES)
    scale = scale if scale is not None else default_scale()
    return run_comparison(cases, planners_table3(), scale=scale, jobs=jobs)


def run_table4(
    cases: Sequence[str] | None = None, scale: float | None = None, jobs: int = 1
) -> Comparison:
    """Reproduce Table 4 (2DOSP comparison) on the given cases."""
    cases = list(cases) if cases is not None else list(TABLE4_CASES)
    scale = scale if scale is not None else default_scale()
    return run_comparison(cases, planners_table4(), scale=scale, jobs=jobs)


def run_table5(
    cases_1d: Sequence[str] | None = None,
    cases_2d: Sequence[str] | None = None,
    time_limit: float = 60.0,
    jobs: int = 1,
) -> Comparison:
    """Reproduce Table 5 (exact ILP vs E-BLOW on tiny instances)."""
    cases_1d = list(cases_1d) if cases_1d is not None else list(TABLE5_1D_CASES)
    cases_2d = list(cases_2d) if cases_2d is not None else list(TABLE5_2D_CASES)
    comparison = Comparison()
    if cases_1d:
        part = run_comparison(
            cases_1d,
            {
                "ilp": PlannerSpec("ilp-1d", {"time_limit": time_limit}),
                "e-blow": PlannerSpec("eblow-1d"),
            },
            jobs=jobs,
        )
        comparison.rows.extend(part.rows)
    if cases_2d:
        part = run_comparison(
            cases_2d,
            {
                "ilp": PlannerSpec("ilp-2d", {"time_limit": time_limit}),
                "e-blow": PlannerSpec("eblow-2d"),
            },
            jobs=jobs,
        )
        comparison.rows.extend(part.rows)
    return comparison


def run_fig5(
    cases: Sequence[str] = ("1M-1", "1M-2", "1M-3", "1M-4"),
    scale: float | None = None,
) -> dict[str, list[int]]:
    """Reproduce Fig. 5: unsolved-character counts per LP iteration."""
    scale = scale if scale is not None else default_scale()
    traces: dict[str, list[int]] = {}
    for case in cases:
        result = run_plan(case, planner="eblow-1d", scale=scale)
        traces[case] = list(result.stats["unsolved_history"])
    return traces


def run_fig6(
    case: str = "1M-1",
    scale: float | None = None,
    bins: int = 10,
) -> dict[str, list]:
    """Reproduce Fig. 6: histogram of the assignment values in the last LP."""
    scale = scale if scale is not None else default_scale()
    result = run_plan(case, planner="eblow-1d", scale=scale)
    values = list(result.stats["last_lp_values"])
    edges = [i / bins for i in range(bins + 1)]
    counts = [0] * bins
    for value in values:
        slot = min(int(value * bins), bins - 1)
        counts[slot] += 1
    return {"case": case, "bin_edges": edges, "counts": counts, "num_values": len(values)}


def run_fig11_12(
    cases: Sequence[str] | None = None, scale: float | None = None, jobs: int = 1
) -> Comparison:
    """Reproduce Figs. 11-12: E-BLOW-0 vs E-BLOW-1 ablation.

    E-BLOW-0 disables fast ILP convergence and post-insertion; E-BLOW-1 is
    the full flow.  Fig. 11 compares writing times, Fig. 12 runtimes; both
    come from the same comparison object.
    """
    cases = list(cases) if cases is not None else list(SUITE_1D) + list(SUITE_1M)
    scale = scale if scale is not None else default_scale()
    planners = {
        "e-blow-0": PlannerSpec("eblow-1d", {"ablated": True}),
        "e-blow-1": PlannerSpec("eblow-1d"),
    }
    return run_comparison(cases, planners, scale=scale, jobs=jobs)
