"""JSON (de)serialization of instances, plans, and comparison results.

The formats are intentionally simple: plain dictionaries produced by the
``to_dict`` methods of the model classes, written with :mod:`json`.  They are
stable enough to archive benchmark instances and planner outputs alongside
``EXPERIMENTS.md``.

Two properties matter to the batch runtime (:mod:`repro.runtime`):

* every ``save_*`` helper creates missing parent directories and writes
  atomically (temp file in the target directory + :func:`os.replace`), so a
  crashed or concurrent writer can never leave a truncated file behind;
* :func:`canonical_json` renders any payload with sorted keys and no
  whitespace, which is the byte representation the runtime's content hashes
  (job ids, result-store keys) are computed over.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path

from repro.evaluation.compare import Comparison
from repro.model import OSPInstance, StencilPlan

__all__ = [
    "save_instance",
    "load_instance",
    "save_plan",
    "load_plan",
    "save_comparison",
    "instance_to_json",
    "instance_from_json",
    "canonical_json",
    "write_text_atomic",
]


def canonical_json(data) -> str:
    """Canonical JSON encoding: sorted keys, no whitespace.

    The encoding is deterministic for any tree of plain containers (NumPy
    scalars are unwrapped, sets/tuples become lists), which makes it suitable
    as the pre-image of content hashes — two payloads hash equal iff their
    canonical encodings are byte-identical.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"), default=_jsonable)


def write_text_atomic(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically, creating parent directories.

    The text lands in a temporary file next to ``path`` and is moved into
    place with :func:`os.replace`, so readers only ever observe the old or
    the complete new content.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    return path


def instance_to_json(instance: OSPInstance, indent: int | None = 2, canonical: bool = False) -> str:
    """Serialize an instance to a JSON string.

    ``canonical=True`` uses :func:`canonical_json` (and ignores ``indent``),
    producing the exact bytes the runtime hashes for instance identity.
    """
    if canonical:
        return canonical_json(instance.to_dict())
    return json.dumps(instance.to_dict(), indent=indent)


def instance_from_json(text: str) -> OSPInstance:
    """Deserialize an instance from a JSON string."""
    return OSPInstance.from_dict(json.loads(text))


def save_instance(instance: OSPInstance, path: str | Path) -> Path:
    """Write an instance to ``path`` (atomically) and return the path."""
    return write_text_atomic(path, instance_to_json(instance))


def load_instance(path: str | Path) -> OSPInstance:
    """Read an instance previously written by :func:`save_instance`."""
    return instance_from_json(Path(path).read_text())


def save_plan(plan: StencilPlan, path: str | Path) -> Path:
    """Write a plan (without its instance) to ``path`` atomically."""
    return write_text_atomic(path, json.dumps(plan.to_dict(), indent=2, default=_jsonable))


def load_plan(instance: OSPInstance, path: str | Path) -> StencilPlan:
    """Read a plan written by :func:`save_plan`, re-attaching its instance."""
    return StencilPlan.from_dict(instance, json.loads(Path(path).read_text()))


def save_comparison(comparison: Comparison, path: str | Path) -> Path:
    """Write a comparison result to ``path`` atomically."""
    return write_text_atomic(path, json.dumps(comparison.to_dict(), indent=2, default=_jsonable))


def _jsonable(value):
    """Fallback encoder for NumPy scalars and other simple objects."""
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, (set, frozenset)):
        # Set iteration order varies with the per-process hash seed; sort so
        # the canonical encoding (and thus every content hash) is stable.
        return sorted(value, key=repr)
    if isinstance(value, tuple):
        return list(value)
    return str(value)
