"""JSON (de)serialization of instances, plans, and comparison results.

The formats are intentionally simple: plain dictionaries produced by the
``to_dict`` methods of the model classes, written with :mod:`json`.  They are
stable enough to archive benchmark instances and planner outputs alongside
``EXPERIMENTS.md``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.evaluation.compare import Comparison
from repro.model import OSPInstance, StencilPlan

__all__ = [
    "save_instance",
    "load_instance",
    "save_plan",
    "load_plan",
    "save_comparison",
    "instance_to_json",
    "instance_from_json",
]


def instance_to_json(instance: OSPInstance, indent: int | None = 2) -> str:
    """Serialize an instance to a JSON string."""
    return json.dumps(instance.to_dict(), indent=indent)


def instance_from_json(text: str) -> OSPInstance:
    """Deserialize an instance from a JSON string."""
    return OSPInstance.from_dict(json.loads(text))


def save_instance(instance: OSPInstance, path: str | Path) -> Path:
    """Write an instance to ``path`` and return the path."""
    path = Path(path)
    path.write_text(instance_to_json(instance))
    return path


def load_instance(path: str | Path) -> OSPInstance:
    """Read an instance previously written by :func:`save_instance`."""
    return instance_from_json(Path(path).read_text())


def save_plan(plan: StencilPlan, path: str | Path) -> Path:
    """Write a plan (without its instance) to ``path``."""
    path = Path(path)
    path.write_text(json.dumps(plan.to_dict(), indent=2, default=_jsonable))
    return path


def load_plan(instance: OSPInstance, path: str | Path) -> StencilPlan:
    """Read a plan written by :func:`save_plan`, re-attaching its instance."""
    return StencilPlan.from_dict(instance, json.loads(Path(path).read_text()))


def save_comparison(comparison: Comparison, path: str | Path) -> Path:
    """Write a comparison result to ``path``."""
    path = Path(path)
    path.write_text(json.dumps(comparison.to_dict(), indent=2, default=_jsonable))
    return path


def _jsonable(value):
    """Fallback encoder for NumPy scalars and other simple objects."""
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, (set, tuple)):
        return list(value)
    return str(value)
