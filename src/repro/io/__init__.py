"""Serialization helpers (JSON instances, plans, and comparison results)."""

from repro.io.serialization import (
    canonical_json,
    instance_from_json,
    instance_to_json,
    load_instance,
    load_plan,
    save_comparison,
    save_instance,
    save_plan,
    write_text_atomic,
)

__all__ = [
    "save_instance",
    "load_instance",
    "save_plan",
    "load_plan",
    "save_comparison",
    "instance_to_json",
    "instance_from_json",
    "canonical_json",
    "write_text_atomic",
]
