"""The planner registry: handles, capabilities, and declarative option schemas.

Every planner the system can run is described by a :class:`PlannerHandle`:
its registry name, a one-line description, its :class:`PlannerCapabilities`
(instance kind, determinism, which knobs it understands, which events it
emits), a declarative :class:`OptionSchema` for its options, and a builder
that turns a validated options dict into an object satisfying the
:class:`Planner` protocol.

Handles self-register at definition time (see :mod:`repro.api.planners`),
replacing the ad-hoc ``_build_*`` closures and per-planner option filtering
the batch runtime used to hide.  Everything on a handle round-trips to
canonical JSON (:meth:`PlannerHandle.describe`), which is what the CLI's
``planners`` verb prints and what keys versioned artifacts.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Protocol, runtime_checkable

from repro.errors import ValidationError

__all__ = [
    "Planner",
    "OptionField",
    "OptionSchema",
    "PlannerCapabilities",
    "PlannerHandle",
    "register",
    "register_planner",
    "resolve_planner",
    "get_handle",
    "iter_handles",
    "list_planners",
    "describe_planners",
]


@runtime_checkable
class Planner(Protocol):
    """Anything that can plan a stencil for an OSP instance."""

    def plan(self, instance) -> object:  # returns repro.model.StencilPlan
        ...


# --------------------------------------------------------------------------- #
# Option schemas
# --------------------------------------------------------------------------- #

def _coerce_bool(value):
    """Strict bool coercion: never let ``bool("false")`` invert intent.

    Options routinely arrive as strings (manifests, CLI plumbing, service
    payloads), where Python's truthiness would turn ``"false"`` / ``"0"``
    into ``True`` silently.  Accept real bools, 0/1, and the canonical
    true/false spellings; reject everything else.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "yes", "on", "1"):
            return True
        if lowered in ("false", "no", "off", "0"):
            return False
    raise ValueError(f"not a boolean: {value!r}")


_COERCERS: dict[str, Callable] = {
    "bool": _coerce_bool,
    "int": int,
    "float": float,
    "str": str,
}


@dataclass(frozen=True)
class OptionField:
    """One declarative planner option.

    ``type`` is one of ``bool`` / ``int`` / ``float`` / ``str``; ``choices``
    (for ``str`` fields) enumerates the legal values.  ``default`` documents
    what the planner uses when the option is omitted — validation never
    injects it, so an options dict only ever contains what the caller wrote
    (keeping content hashes of old jobs stable).
    """

    name: str
    type: str = "str"
    default: object = None
    choices: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if self.type not in _COERCERS:
            raise ValidationError(
                f"option {self.name!r} has unknown type {self.type!r}; "
                f"expected one of {sorted(_COERCERS)}"
            )

    def coerce(self, value, planner: str):
        try:
            coerced = _COERCERS[self.type](value)
        except (TypeError, ValueError) as exc:
            raise ValidationError(
                f"option {self.name!r} of planner {planner!r} expects "
                f"{self.type}, got {value!r}"
            ) from exc
        if self.choices and coerced not in self.choices:
            raise ValidationError(
                f"option {self.name!r} of planner {planner!r} must be one of "
                f"{sorted(self.choices)}, got {coerced!r}"
            )
        return coerced

    def to_dict(self) -> dict:
        data: dict = {"name": self.name, "type": self.type}
        if self.default is not None:
            data["default"] = self.default
        if self.choices:
            data["choices"] = list(self.choices)
        if self.description:
            data["description"] = self.description
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "OptionField":
        return cls(
            name=data["name"],
            type=data.get("type", "str"),
            default=data.get("default"),
            choices=tuple(data.get("choices", ())),
            description=data.get("description", ""),
        )


@dataclass(frozen=True)
class OptionSchema:
    """The declared options of one planner, versioned for serialization.

    ``open_schema=True`` disables unknown-option checking (used by the legacy
    :func:`register_planner` back-compat path, whose free-form builders take
    whatever dict they are given).
    """

    fields: tuple[OptionField, ...] = ()
    version: int = 1
    open_schema: bool = False

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(names) != len(set(names)):
            raise ValidationError(f"duplicate option names in schema: {names}")

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def field_by_name(self, name: str) -> OptionField | None:
        for f in self.fields:
            if f.name == name:
                return f
        return None

    def validate(self, options: Mapping, planner: str) -> dict:
        """Check ``options`` against the schema; return the coerced dict.

        Raises :class:`~repro.errors.ValidationError` naming the unknown
        option(s) and the allowed set — the same contract the runtime's old
        ``_take`` filter enforced.  Declared defaults are *not* injected:
        the result contains exactly the keys the caller supplied.
        """
        options = dict(options or {})
        if self.open_schema:
            return options
        unknown = sorted(set(options) - set(self.names))
        if unknown:
            raise ValidationError(
                f"unknown option(s) {unknown} for planner {planner!r}; "
                f"allowed: {sorted(self.names)}"
            )
        return {
            name: self.field_by_name(name).coerce(value, planner)
            for name, value in options.items()
        }

    def to_dict(self) -> dict:
        data: dict = {"version": self.version, "fields": [f.to_dict() for f in self.fields]}
        if self.open_schema:
            data["open"] = True
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "OptionSchema":
        return cls(
            fields=tuple(OptionField.from_dict(f) for f in data.get("fields", ())),
            version=int(data.get("version", 1)),
            open_schema=bool(data.get("open", False)),
        )


# --------------------------------------------------------------------------- #
# Capabilities
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class PlannerCapabilities:
    """What a planner can do, as declared data.

    ``kind`` is ``"1D"``, ``"2D"``, or ``None`` for kind-agnostic planners.
    ``deterministic`` means identical inputs give bit-identical plans under
    the planner's *default* options regardless of machine load (the
    time-limited exact ILP planners return whatever incumbent the wall
    clock allowed, so they declare ``False``).
    """

    kind: str | None = None
    deterministic: bool = True
    supports_engine: bool = False
    supports_chains: bool = False
    supports_warm_start: bool = False
    supports_time_limit: bool = False
    event_types: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "deterministic": self.deterministic,
            "supports_engine": self.supports_engine,
            "supports_chains": self.supports_chains,
            "supports_warm_start": self.supports_warm_start,
            "supports_time_limit": self.supports_time_limit,
            "event_types": list(self.event_types),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PlannerCapabilities":
        return cls(
            kind=data.get("kind"),
            deterministic=bool(data.get("deterministic", True)),
            supports_engine=bool(data.get("supports_engine", False)),
            supports_chains=bool(data.get("supports_chains", False)),
            supports_warm_start=bool(data.get("supports_warm_start", False)),
            supports_time_limit=bool(data.get("supports_time_limit", False)),
            event_types=tuple(data.get("event_types", ())),
        )


# --------------------------------------------------------------------------- #
# Handles and the registry
# --------------------------------------------------------------------------- #

PlannerBuilder = Callable[[dict], Planner]


@dataclass(frozen=True)
class PlannerHandle:
    """One registered planner: identity, declared surface, and builder."""

    name: str
    description: str
    capabilities: PlannerCapabilities
    schema: OptionSchema = field(default_factory=OptionSchema)
    builder: PlannerBuilder | None = None

    def validate_options(self, options: Mapping | None) -> dict:
        return self.schema.validate(options or {}, self.name)

    def build(self, options: Mapping | None = None) -> Planner:
        """Validate ``options`` against the schema and instantiate the planner."""
        if self.builder is None:
            raise ValidationError(f"planner {self.name!r} has no builder registered")
        return self.builder(self.validate_options(options))

    def describe(self) -> dict:
        """Canonical-JSON summary (what ``eblow planners --json`` prints)."""
        return {
            "name": self.name,
            "description": self.description,
            "capabilities": self.capabilities.to_dict(),
            "options": self.schema.to_dict(),
        }


_REGISTRY: dict[str, PlannerHandle] = {}


def register(handle: PlannerHandle) -> PlannerHandle:
    """Register (or replace) a planner handle under its lowercased name."""
    _REGISTRY[handle.name.lower()] = handle
    return handle


def register_planner(
    name: str,
    builder: PlannerBuilder,
    kind: str | None = None,
    description: str = "",
) -> None:
    """Legacy registration shim: wrap a bare builder in an open-schema handle.

    Kept so pre-façade callers (and their pickled worker processes) keep
    working; new code should build a :class:`PlannerHandle` and call
    :func:`register` with explicit capabilities and an option schema.
    """
    register(
        PlannerHandle(
            name=name.lower(),
            description=description,
            capabilities=PlannerCapabilities(kind=kind),
            schema=OptionSchema(open_schema=True),
            builder=builder,
        )
    )


def resolve_planner(name: str, kind: str | None = None) -> str:
    """Resolve ``name`` to a registry key, honouring kind-suffix shorthand.

    ``resolve_planner("eblow", "2D")`` returns ``"eblow-2d"``: a bare family
    name dispatches on the instance kind, so the CLI's ``--planner eblow``
    works for both 1D and 2D instances.  Unknown names raise a
    :class:`~repro.errors.ValidationError` that lists the registered keys and
    suggests the nearest matches.
    """
    key = name.lower()
    if key in _REGISTRY:
        return key
    if kind is not None:
        suffixed = f"{key}-{kind.lower()}"
        if suffixed in _REGISTRY:
            return suffixed
    available = sorted(_REGISTRY)
    candidates = set(available)
    if kind is not None:
        # Suggest bare family names too: "eblov" for kind 1D should offer "eblow".
        suffix = f"-{kind.lower()}"
        candidates.update(n[: -len(suffix)] for n in available if n.endswith(suffix))
    close = difflib.get_close_matches(key, sorted(candidates), n=3, cutoff=0.5)
    hint = f"; did you mean {' or '.join(repr(c) for c in close)}?" if close else ""
    raise ValidationError(
        f"unknown planner {name!r}"
        + (f" for kind {kind!r}" if kind else "")
        + f"; registered planners: {available}"
        + hint
    )


def get_handle(name: str, kind: str | None = None) -> PlannerHandle:
    """The handle for ``name`` (with kind-suffix shorthand resolution)."""
    return _REGISTRY[resolve_planner(name, kind)]


def iter_handles(kind: str | None = None) -> Iterator[PlannerHandle]:
    """All registered handles in name order, optionally filtered by kind."""
    for name in sorted(_REGISTRY):
        handle = _REGISTRY[name]
        if kind is None or handle.capabilities.kind is None or handle.capabilities.kind == kind:
            yield handle


def list_planners() -> dict[str, str]:
    """Mapping of registered planner names to one-line descriptions."""
    return {handle.name: handle.description for handle in iter_handles()}


def describe_planners(kind: str | None = None) -> list[dict]:
    """JSON-able descriptions of every registered planner."""
    return [handle.describe() for handle in iter_handles(kind)]
