"""Self-registering planner handles for every planner in the repository.

This module is the single declarative catalogue that replaced the ad-hoc
``_build_*`` closures of the old batch runtime: each planner states its
capabilities and option schema as data and registers itself at import time.
Builders import their planner modules lazily so ``import repro.api`` stays
cheap; registration is process-local and inherited by forked pool workers.

Adding a planner means adding one :func:`~repro.api.registry.register` call
here (or calling it from your own module before use) — the CLI ``planners``
verb, the batch runtime, portfolio racing, and ``repro.plan`` all pick it up
through the shared registry.
"""

from __future__ import annotations

from repro.api.registry import (
    OptionField,
    OptionSchema,
    PlannerCapabilities,
    PlannerHandle,
    register,
)

__all__ = ["STABLE_PLANNERS"]


def _build_greedy_1d(options: dict):
    from repro.baselines import Greedy1DConfig, Greedy1DPlanner

    return Greedy1DPlanner(Greedy1DConfig(**options))


def _build_heur_1d(options: dict):
    from repro.baselines import Heuristic1DConfig, Heuristic1DPlanner

    return Heuristic1DPlanner(Heuristic1DConfig(**options))


def _build_rows_1d(options: dict):
    from repro.baselines import RowStructure1DConfig, RowStructure1DPlanner

    return RowStructure1DPlanner(RowStructure1DConfig(**options))


def _build_eblow_1d(options: dict):
    from dataclasses import replace

    from repro.core.onedim import EBlow1DConfig, EBlow1DPlanner

    config = EBlow1DConfig.ablated() if options.get("ablated") else EBlow1DConfig()
    if options.get("deterministic"):
        # Historically this dropped the fast-convergence ILP's 5-second
        # wall-clock cap.  The flow is deterministic by default now (the ILP
        # stops on a relative MIP gap instead of wall clock); the option is
        # kept so existing specs — and their job hashes / store keys — stay
        # valid, and it still guarantees no cap even if a caller's config
        # reintroduced one.
        config.convergence = replace(config.convergence, time_limit=None)
    return EBlow1DPlanner(config)


def _build_greedy_2d(options: dict):
    from repro.baselines import Greedy2DConfig, Greedy2DPlanner

    return Greedy2DPlanner(Greedy2DConfig(**options))


def _build_sa_2d(options: dict):
    from repro.baselines import Floorplan2DConfig, Floorplan2DPlanner

    return Floorplan2DPlanner(
        Floorplan2DConfig(
            seed=int(options.get("seed", 0)),
            engine=str(options.get("engine", "auto")),
            chains=int(options["chains"]) if "chains" in options else None,
        )
    )


def _build_sa_2d_batched(options: dict):
    from repro.baselines import Floorplan2DConfig, Floorplan2DPlanner

    # The portfolio entrant: the batched engine is forced on, with a
    # multi-start default of 8 chains so racing it against sa-2d compares
    # multi-chain throughput, not just a relabelled single chain.
    return Floorplan2DPlanner(
        Floorplan2DConfig(
            seed=int(options.get("seed", 0)),
            engine="batched",
            chains=int(options.get("chains", 8)),
        )
    )


def _build_eblow_2d(options: dict):
    from repro.core.twodim import EBlow2DConfig, EBlow2DPlanner

    # "deterministic" is accepted for symmetry with eblow-1d; the 2D flow is
    # already reproducible (seeded annealing, no wall-clock cut-offs).
    return EBlow2DPlanner(
        EBlow2DConfig(
            seed=int(options.get("seed", 0)),
            engine=str(options.get("engine", "auto")),
            chains=int(options["chains"]) if "chains" in options else None,
        )
    )


def _build_ilp_1d(options: dict):
    from repro.baselines import ExactILP1DPlanner

    return ExactILP1DPlanner(_ilp_config(options))


def _build_ilp_2d(options: dict):
    from repro.baselines import ExactILP2DPlanner

    return ExactILP2DPlanner(_ilp_config(options))


def _ilp_config(options: dict):
    from repro.baselines import ExactILPConfig

    return ExactILPConfig(
        time_limit=options.get("time_limit", 300.0),
        backend=options.get("backend", "scipy"),
    )


_ENGINE_FIELD = OptionField(
    name="engine",
    type="str",
    default="auto",
    choices=("auto", "copy", "incremental", "batched"),
    description=(
        "annealing engine; placements and writing times are bit-identical "
        "across engines under RNG lockstep (copy is the reference, "
        "incremental the fast mutate/undo one, batched runs K chains per "
        "ufunc dispatch)"
    ),
)
_SEED_FIELD = OptionField(
    name="seed", type="int", default=0, description="annealing RNG seed"
)
_CHAINS_FIELD = OptionField(
    name="chains",
    type="int",
    default=1,
    description=(
        "lockstep chain count for the batched engine (chain c is seeded "
        "seed + c; chains > 1 makes engine=auto pick the batched engine)"
    ),
)
_ANNEAL_EVENTS = ("temperature", "incumbent", "rebase")

#: Every first-party planner handle, registered at import time.
STABLE_PLANNERS: tuple[PlannerHandle, ...] = (
    register(
        PlannerHandle(
            name="greedy-1d",
            description="first-fit greedy 1DOSP baseline (Greedy[24])",
            capabilities=PlannerCapabilities(kind="1D"),
            schema=OptionSchema(
                fields=(
                    OptionField(
                        name="by_density",
                        type="bool",
                        default=True,
                        description="order candidates by profit density instead of profit",
                    ),
                )
            ),
            builder=_build_greedy_1d,
        )
    ),
    register(
        PlannerHandle(
            name="heur-1d",
            description="two-step select-then-pack heuristic (Heur[24])",
            capabilities=PlannerCapabilities(kind="1D"),
            schema=OptionSchema(
                fields=(
                    OptionField(
                        name="exchange_passes",
                        type="int",
                        default=1,
                        description="improvement passes over the selection",
                    ),
                    OptionField(
                        name="refinement_threshold",
                        type="int",
                        default=20,
                        description="max row size for exact DP re-ordering",
                    ),
                )
            ),
            builder=_build_heur_1d,
        )
    ),
    register(
        PlannerHandle(
            name="rows-1d",
            description="row-structure deterministic 1D baseline ([25]-style)",
            capabilities=PlannerCapabilities(kind="1D"),
            schema=OptionSchema(
                fields=(
                    OptionField(
                        name="refinement_threshold",
                        type="int",
                        default=20,
                        description="max row size for exact DP re-ordering",
                    ),
                )
            ),
            builder=_build_rows_1d,
        )
    ),
    register(
        PlannerHandle(
            name="eblow-1d",
            description="E-BLOW 1DOSP flow (option ablated=true gives E-BLOW-0)",
            capabilities=PlannerCapabilities(
                kind="1D",
                # The fast-convergence ILP stops on a relative MIP gap (no
                # wall-clock cap), so the whole flow is reproducible across
                # machines and load.
                deterministic=True,
                supports_warm_start=True,
                event_types=("stage", "stage_done", "lp_solve", "iteration"),
            ),
            schema=OptionSchema(
                fields=(
                    OptionField(
                        name="ablated",
                        type="bool",
                        default=False,
                        description="run E-BLOW-0 (no fast ILP convergence, no post-insertion)",
                    ),
                    OptionField(
                        name="deterministic",
                        type="bool",
                        default=False,
                        description=(
                            "kept for compatibility: the flow is deterministic "
                            "by default now (gap-based ILP stop, no wall clock)"
                        ),
                    ),
                )
            ),
            builder=_build_eblow_1d,
        )
    ),
    register(
        PlannerHandle(
            name="greedy-2d",
            description="shelf-packing greedy 2DOSP baseline (Greedy[24])",
            capabilities=PlannerCapabilities(kind="2D"),
            schema=OptionSchema(
                fields=(
                    OptionField(
                        name="by_density",
                        type="bool",
                        default=True,
                        description="order candidates by profit density instead of profit",
                    ),
                )
            ),
            builder=_build_greedy_2d,
        )
    ),
    register(
        PlannerHandle(
            name="sa-2d",
            description="plain fixed-outline annealer baseline (SA[24])",
            capabilities=PlannerCapabilities(
                kind="2D",
                supports_engine=True,
                supports_chains=True,
                event_types=_ANNEAL_EVENTS,
            ),
            schema=OptionSchema(fields=(_SEED_FIELD, _ENGINE_FIELD, _CHAINS_FIELD)),
            builder=_build_sa_2d,
        )
    ),
    register(
        PlannerHandle(
            name="sa-2d-batched",
            description="multi-chain batched annealer baseline (SA[24] x K chains)",
            capabilities=PlannerCapabilities(
                kind="2D",
                supports_chains=True,
                event_types=_ANNEAL_EVENTS,
            ),
            schema=OptionSchema(
                fields=(
                    _SEED_FIELD,
                    OptionField(
                        name="chains",
                        type="int",
                        default=8,
                        description=(
                            "lockstep chain count (chain c is seeded seed + c; "
                            "the plan comes from the best chain)"
                        ),
                    ),
                )
            ),
            builder=_build_sa_2d_batched,
        )
    ),
    register(
        PlannerHandle(
            name="eblow-2d",
            description="E-BLOW 2DOSP flow (pre-filter + clustering + annealing)",
            capabilities=PlannerCapabilities(
                kind="2D",
                supports_engine=True,
                supports_chains=True,
                event_types=("stage", "stage_done") + _ANNEAL_EVENTS,
            ),
            schema=OptionSchema(
                fields=(
                    _SEED_FIELD,
                    OptionField(
                        name="deterministic",
                        type="bool",
                        default=True,
                        description="accepted for symmetry with eblow-1d (the 2D flow is already reproducible)",
                    ),
                    _ENGINE_FIELD,
                    _CHAINS_FIELD,
                )
            ),
            builder=_build_eblow_2d,
        )
    ),
    register(
        PlannerHandle(
            name="ilp-1d",
            description="exact 1DOSP ILP (options: time_limit, backend)",
            capabilities=PlannerCapabilities(
                kind="1D",
                deterministic=False,  # time-limited MILP returns its incumbent
                supports_time_limit=True,
            ),
            schema=OptionSchema(
                fields=(
                    OptionField(
                        name="time_limit",
                        type="float",
                        default=300.0,
                        description="MILP wall-clock budget in seconds",
                    ),
                    OptionField(
                        name="backend",
                        type="str",
                        default="scipy",
                        description="MILP backend",
                    ),
                )
            ),
            builder=_build_ilp_1d,
        )
    ),
    register(
        PlannerHandle(
            name="ilp-2d",
            description="exact 2DOSP ILP (options: time_limit, backend)",
            capabilities=PlannerCapabilities(
                kind="2D",
                deterministic=False,
                supports_time_limit=True,
            ),
            schema=OptionSchema(
                fields=(
                    OptionField(
                        name="time_limit",
                        type="float",
                        default=300.0,
                        description="MILP wall-clock budget in seconds",
                    ),
                    OptionField(
                        name="backend",
                        type="str",
                        default="scipy",
                        description="MILP backend",
                    ),
                )
            ),
            builder=_build_ilp_2d,
        )
    ),
)
