"""The one-call planning façade: ``repro.plan(...)``.

Every entry point in the repository — the CLI verbs, the paper-table
reproductions, batch serving, portfolio racing — is a thin client of this
module: build a :class:`~repro.api.lifecycle.PlanRequest`, run it through
the shared execution path, get a :class:`~repro.api.lifecycle.PlanResult`.

>>> import repro
>>> result = repro.plan("1T-1", planner="eblow", scale=1.0)
>>> result.ok
True

Events emitted by the planner during the run (LP solves, annealing
temperature steps, incumbent improvements, ...) are streamed to the
``on_event`` callback and captured on ``result.events``.
"""

from __future__ import annotations

from typing import Mapping

from repro.api.lifecycle import PlanningError, PlanRequest, PlanResult
from repro.errors import ValidationError
from repro.events import EventSink, PlanEvent, emitting, guarded_sink

__all__ = ["plan", "submit", "planner_pool"]


def planner_pool(max_workers: int, retries: int = 0, chunksize: int | None = None):
    """A warm worker pool for serving many plans without per-batch spawn.

    The returned :class:`~repro.runtime.pool.PlannerPool` keeps its worker
    processes — and their per-instance caches — alive across successive
    :func:`repro.runtime.run_jobs` / :func:`repro.runtime.run_portfolio`
    calls (pass it as ``pool=``).  Inline instances ship through the pool's
    shared-memory arena exactly once, and jobs cross the process boundary as
    thin descriptors in chunks.  Use as a context manager (or call
    ``close()``) so workers and arena segments are reclaimed::

        import repro
        from repro.runtime import grid_jobs, run_jobs

        with repro.planner_pool(max_workers=4) as pool:
            first = run_jobs(grid_jobs(["1M-1", "1M-2"], {"e": "eblow-1d"}), pool=pool)
            again = run_jobs(grid_jobs(["1M-1"], {"g": "greedy-1d"}), pool=pool)
    """
    from repro.runtime.pool import PlannerPool

    return PlannerPool(max_workers=max_workers, retries=retries, chunksize=chunksize)


def plan(
    instance,
    planner: str = "eblow",
    *,
    on_event: EventSink | None = None,
    options: Mapping[str, object] | None = None,
    scale: float | None = None,
    timeout: float | None = None,
    label: str | None = None,
    store=None,
    check: bool = True,
    collect_events: bool = True,
    **extra_options,
) -> PlanResult:
    """Plan ``instance`` with a registered planner and return the result.

    Parameters
    ----------
    instance:
        An :class:`~repro.model.OSPInstance`, or the name of a benchmark
        case (resolved with ``scale``, defaulting to the repo-wide scale).
    planner:
        Registry name; bare family names (``"eblow"``) dispatch on the
        instance kind.  See ``repro.api.list_planners()``.
    on_event:
        Callback receiving each :class:`~repro.events.PlanEvent` live.
    options / ``**extra_options``:
        Planner options, validated against the planner's declared schema
        (``repro.plan(inst, "eblow-2d", seed=3, engine="incremental")``).
    timeout:
        Wall-clock bound in seconds for the run.
    store:
        Optional :class:`~repro.runtime.store.ResultStore`; hits skip the
        planner entirely, fresh ``ok`` results are persisted.
    check:
        When true (the default) a failed run raises :class:`PlanningError`
        (with ``.result`` attached) instead of returning silently.
    collect_events:
        Capture the event stream on ``result.events`` (disable for
        long-running service loops that only want the live callback).
    """
    merged = dict(options or {})
    for key, value in extra_options.items():
        if key in merged:
            raise ValidationError(f"option {key!r} given both in options= and as keyword")
        merged[key] = value

    from repro.model import OSPInstance

    if isinstance(instance, OSPInstance):
        if scale is not None:
            raise ValidationError(
                "scale= only applies to benchmark-case names; an OSPInstance "
                "is planned as-is (rebuild it at the scale you want)"
            )
        request = PlanRequest(
            planner=planner, options=merged, instance=instance,
            timeout=timeout, label=label,
        )
    elif isinstance(instance, str):
        if scale is None:
            from repro.workloads import default_scale

            scale = default_scale()
        request = PlanRequest(
            planner=planner, options=merged, case=instance, scale=scale,
            timeout=timeout, label=label,
        )
    else:
        raise ValidationError(
            f"plan() expects an OSPInstance or a benchmark-case name, got {type(instance).__name__}"
        )

    result = submit(
        request, on_event=on_event, store=store, collect_events=collect_events
    )
    if check and not result.ok:
        raise PlanningError(
            f"planner {request.planner!r} on {result.case!r} {result.status}: {result.error}",
            result=result,
        )
    return result


def _case_kind(case: str) -> str | None:
    """The planner kind (1D/2D) of a named benchmark case, if known.

    The tiny suites carry their own kind tags (``1T`` / ``2T``); they map to
    the planner kinds.  Unknown case names return ``None`` — the resulting
    "unknown planner" error from bare-name resolution is the right message,
    and a fully-qualified planner name still resolves fine.
    """
    from repro.workloads import ALL_CASES

    entry = ALL_CASES.get(case)
    if entry is None:
        return None
    return {"1T": "1D", "2T": "2D"}.get(entry.kind, entry.kind)


def submit(
    request: PlanRequest,
    on_event: EventSink | None = None,
    store=None,
    collect_events: bool = True,
) -> PlanResult:
    """Run one :class:`PlanRequest` in the current process.

    This is the lifecycle's single execution path: options are validated
    against the planner's schema up front, store hits short-circuit the
    planner, and the event stream is attached to the returned
    :class:`PlanResult`.  Unlike :func:`plan` it never raises for planner
    failures — they come back as ``status="error"`` results.
    """
    from repro.runtime.jobs import execute_job

    # Fail fast with a raised ValidationError (execute_job would swallow it
    # into a status="error" result).  PlannerSpec.build validates again at
    # build time for non-façade callers; the options dicts are tiny, so the
    # duplicate check is noise-level.
    request.validated()

    job = request.to_job()
    if store is not None:
        cached = store.get(job)
        if cached is not None:
            return PlanResult.from_job_result(cached, timeout=request.timeout)

    events: list[PlanEvent] = []

    if not collect_events and on_event is None:
        # Nobody is listening: keep emission a true no-op on the hot paths.
        job_result = execute_job(job)
    else:
        # The user callback is guarded separately from collection: a sink
        # that raises is dropped (the events.py contract), but the captured
        # stream on the result must stay complete.
        callback = guarded_sink(on_event)

        def _sink(event: PlanEvent) -> None:
            if collect_events:
                events.append(event)
            if callback is not None:
                callback(event)

        with emitting(_sink):
            job_result = execute_job(job)

    if store is not None and job_result.ok:
        store.put(job, job_result)
    return PlanResult.from_job_result(job_result, events=events, timeout=request.timeout)
