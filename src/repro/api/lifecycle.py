"""The typed plan lifecycle: ``PlanRequest → PlanResult``.

One request model and one result model unify what used to be three
overlapping shapes — the evaluation layer's ``AlgorithmResult``, the batch
runtime's ``JobResult``, and the per-planner ``plan.stats`` dicts:

* :class:`PlanRequest` is the serializable description of one planning run
  (what + how + bounds).  It converts losslessly to the batch runtime's
  :class:`~repro.runtime.jobs.PlanJob`, so its content-hash identity — and
  therefore the content-addressed result store — is exactly the pre-façade
  one: no cached plan is invalidated by the API layer.
* :class:`PlanResult` carries everything any consumer needs: the paper's
  three comparison columns, execution provenance (worker pid, attempts,
  cache hit), the full serialized plan, the planner's telemetry ``extra``,
  and the :class:`~repro.events.PlanEvent` stream captured during the run.

Both round-trip through ``to_dict`` / ``from_dict`` (canonical-JSON-able),
which is the wire format for manifests, stores, and service deployments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import ReproError, ValidationError
from repro.events import PlanEvent

__all__ = ["PlanRequest", "PlanResult", "PlanningError"]


class PlanningError(ReproError):
    """A façade planning call failed (carries the failed :class:`PlanResult`).

    Derives from the neutral :class:`~repro.errors.ReproError`, not
    :class:`~repro.errors.ValidationError`: a planner timeout or solver
    crash must not be swallowed by handlers written for bad input.
    """

    def __init__(self, message: str, result: "PlanResult | None" = None) -> None:
        super().__init__(message)
        self.result = result


@dataclass(frozen=True)
class PlanRequest:
    """A planning run as pure data.

    Exactly one of ``case`` (a named benchmark case, resolved with ``scale``)
    or ``instance`` (an inline :class:`~repro.model.OSPInstance`) must be
    given.  ``options`` are validated against the planner's declared
    :class:`~repro.api.registry.OptionSchema` when the request is built.
    """

    planner: str
    options: Mapping[str, object] = field(default_factory=dict)
    case: str | None = None
    scale: float | None = None
    instance: object | None = None  # repro.model.OSPInstance
    timeout: float | None = None
    label: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "options", dict(self.options))
        if (self.case is None) == (self.instance is None):
            raise ValidationError("PlanRequest needs exactly one of case= or instance=")

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_job(self):
        """The batch-runtime job with the identical content-hash identity.

        The job (itself frozen, with cached content hashes) is memoised on
        the request, so reading ``job_id`` / ``instance_hash`` /
        ``config_hash`` back-to-back serializes the instance once, not once
        per property.
        """
        job = self.__dict__.get("_job")
        if job is None:
            from repro.runtime.jobs import PlanJob, PlannerSpec

            job = PlanJob(
                spec=PlannerSpec(self.planner, dict(self.options)),
                case=self.case,
                scale=self.scale,
                instance=self.instance,
                timeout=self.timeout,
                label=self.label,
            )
            self.__dict__["_job"] = job
        return job

    @classmethod
    def from_job(cls, job) -> "PlanRequest":
        """Lift a :class:`~repro.runtime.jobs.PlanJob` into the API model."""
        return cls(
            planner=job.spec.planner,
            options=dict(job.spec.options),
            case=job.case,
            scale=job.scale,
            instance=job.instance,
            timeout=job.timeout,
            label=job.label,
        )

    # Identity proxies (same hashes as the underlying PlanJob). ----------- #
    @property
    def job_id(self) -> str:
        return self.to_job().job_id

    @property
    def instance_hash(self) -> str:
        return self.to_job().instance_hash

    @property
    def config_hash(self) -> str:
        return self.to_job().config_hash

    @property
    def display_label(self) -> str:
        return self.label or self.planner

    def validated(self) -> "PlanRequest":
        """Check options against the planner's schema; return self."""
        from repro.api.facade import _case_kind
        from repro.api.registry import get_handle

        kind = self.instance.kind if self.instance is not None else _case_kind(self.case)
        get_handle(self.planner, kind).validate_options(self.options)
        return self

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        data: dict = {
            "planner": self.planner,
            "options": dict(self.options),
            "timeout": self.timeout,
            "label": self.label,
        }
        if self.case is not None:
            data["case"] = self.case
            data["scale"] = self.scale
        else:
            data["instance"] = self.instance.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "PlanRequest":
        instance = None
        if data.get("instance") is not None:
            from repro.model import OSPInstance

            instance = OSPInstance.from_dict(data["instance"])
        return cls(
            planner=data["planner"],
            options=dict(data.get("options", {})),
            case=data.get("case"),
            scale=data.get("scale"),
            instance=instance,
            timeout=data.get("timeout"),
            label=data.get("label"),
        )


@dataclass
class PlanResult:
    """The unified outcome of one planning run.

    Supersedes the trio of ``AlgorithmResult`` (comparison columns),
    ``JobResult`` (execution provenance), and raw ``plan.stats`` dicts;
    conversion methods to the legacy shapes keep old consumers working.
    """

    # Identity
    job_id: str
    case: str
    label: str
    planner: str
    # Outcome
    status: str  # "ok" | "error" | "timeout"
    error: str | None = None
    # The paper's comparison columns
    writing_time: float = 0.0
    num_selected: int = 0
    runtime_seconds: float = 0.0
    # Execution provenance
    wall_seconds: float = 0.0
    worker_pid: int = 0
    attempts: int = 1
    cache_hit: bool = False
    timeout: float | None = None
    # Artifacts
    plan: dict | None = None
    instance_summary: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)
    events: list[PlanEvent] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def stats(self) -> dict:
        """The planner's full ``plan.stats`` dict (empty when no plan)."""
        if self.plan is None:
            return {}
        return dict(self.plan.get("stats", {}))

    def event_counts(self) -> dict[str, int]:
        """How many events of each type the run emitted."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.type] = counts.get(event.type, 0) + 1
        return counts

    def trace(self):
        """The run's span tree assembled from the captured event stream.

        Returns a :class:`repro.obs.tracing.Span` (render it with
        :func:`repro.obs.report.render_report`), or ``None`` when the run
        emitted no ``span`` events (e.g. ``collect_events=False``).
        """
        from repro.obs.tracing import TraceCollector

        collector = TraceCollector()
        for event in self.events:
            collector(event)
        if not collector.spans():
            return None
        return collector.tree()

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "case": self.case,
            "label": self.label,
            "planner": self.planner,
            "status": self.status,
            "error": self.error,
            "writing_time": self.writing_time,
            "num_selected": self.num_selected,
            "runtime_seconds": self.runtime_seconds,
            "wall_seconds": self.wall_seconds,
            "worker_pid": self.worker_pid,
            "attempts": self.attempts,
            "cache_hit": self.cache_hit,
            "timeout": self.timeout,
            "plan": self.plan,
            "instance_summary": dict(self.instance_summary),
            "extra": dict(self.extra),
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PlanResult":
        return cls(
            job_id=data["job_id"],
            case=data["case"],
            label=data["label"],
            planner=data["planner"],
            status=data["status"],
            error=data.get("error"),
            writing_time=data.get("writing_time", 0.0),
            num_selected=data.get("num_selected", 0),
            runtime_seconds=data.get("runtime_seconds", 0.0),
            wall_seconds=data.get("wall_seconds", 0.0),
            worker_pid=data.get("worker_pid", 0),
            attempts=data.get("attempts", 1),
            cache_hit=data.get("cache_hit", False),
            timeout=data.get("timeout"),
            plan=data.get("plan"),
            instance_summary=dict(data.get("instance_summary", {})),
            extra=dict(data.get("extra", {})),
            events=[PlanEvent.from_dict(e) for e in data.get("events", ())],
        )

    # ------------------------------------------------------------------ #
    # Legacy conversions
    # ------------------------------------------------------------------ #
    @classmethod
    def from_job_result(
        cls,
        result,
        events: Sequence[PlanEvent] = (),
        timeout: float | None = None,
    ) -> "PlanResult":
        """Lift a :class:`~repro.runtime.jobs.JobResult` into the API model."""
        return cls(
            job_id=result.job_id,
            case=result.case,
            label=result.label,
            planner=result.planner,
            status=result.status,
            error=result.error,
            writing_time=result.writing_time,
            num_selected=result.num_selected,
            runtime_seconds=result.runtime_seconds,
            wall_seconds=result.wall_seconds,
            worker_pid=result.worker_pid,
            attempts=result.attempts,
            cache_hit=result.cache_hit,
            timeout=timeout,
            plan=result.plan,
            instance_summary=dict(result.instance_summary),
            extra=dict(result.extra),
            events=list(events),
        )

    def to_job_result(self):
        """Project back onto the batch runtime's :class:`JobResult`."""
        from repro.runtime.jobs import JobResult

        return JobResult(
            job_id=self.job_id,
            case=self.case,
            label=self.label,
            planner=self.planner,
            status=self.status,
            writing_time=self.writing_time,
            num_selected=self.num_selected,
            runtime_seconds=self.runtime_seconds,
            wall_seconds=self.wall_seconds,
            worker_pid=self.worker_pid,
            attempts=self.attempts,
            cache_hit=self.cache_hit,
            error=self.error,
            plan=self.plan,
            instance_summary=dict(self.instance_summary),
            extra=dict(self.extra),
        )

    def to_algorithm_result(self):
        """Project onto the comparison-table record."""
        from repro.evaluation.metrics import AlgorithmResult

        return AlgorithmResult(
            algorithm=self.label,
            case=self.case,
            writing_time=self.writing_time,
            num_selected=self.num_selected,
            runtime_seconds=self.runtime_seconds,
            extra=dict(self.extra),
        )

    def plan_object(self, instance):
        """Rebuild the :class:`~repro.model.StencilPlan` against ``instance``."""
        from repro.model import StencilPlan

        if self.plan is None:
            raise ValidationError(
                f"plan result {self.job_id} carries no plan (status={self.status})"
            )
        return StencilPlan.from_dict(instance, self.plan)
