"""``repro.api`` — the unified public planning API.

One façade, one typed lifecycle, one event protocol:

* :func:`plan` / :func:`submit` — the one-call entry point every other
  entry point (CLI, experiments, batch runtime, portfolio) is a thin
  client of,
* :class:`PlanRequest` → :class:`PlanResult` — the serializable lifecycle
  models unifying ``AlgorithmResult`` / ``JobResult`` / plan stats,
* :class:`PlanEvent` + :func:`emitting` — the streaming progress protocol
  (see :mod:`repro.events`),
* :class:`PlannerHandle` / :class:`PlannerCapabilities` /
  :class:`OptionSchema` — the self-registering planner registry with
  declared capabilities and declarative, versioned option schemas.

>>> import repro
>>> result = repro.plan("1T-1", planner="greedy-1d", scale=1.0)
>>> result.ok and result.num_selected > 0
True
"""

from repro.api.facade import plan, planner_pool, submit
from repro.api.lifecycle import PlanningError, PlanRequest, PlanResult
from repro.api.registry import (
    OptionField,
    OptionSchema,
    Planner,
    PlannerCapabilities,
    PlannerHandle,
    describe_planners,
    get_handle,
    iter_handles,
    list_planners,
    register,
    register_planner,
    resolve_planner,
)

# Importing the catalogue registers every first-party planner handle.
from repro.api import planners as _planners  # noqa: F401  (self-registration)
from repro.events import EVENT_TYPES, EventSink, PlanEvent, emit, emitting, events_enabled

__all__ = [
    # façade
    "plan",
    "submit",
    "planner_pool",
    # lifecycle
    "PlanRequest",
    "PlanResult",
    "PlanningError",
    # events
    "PlanEvent",
    "EventSink",
    "EVENT_TYPES",
    "emit",
    "emitting",
    "events_enabled",
    # registry
    "Planner",
    "PlannerHandle",
    "PlannerCapabilities",
    "OptionField",
    "OptionSchema",
    "register",
    "register_planner",
    "resolve_planner",
    "get_handle",
    "iter_handles",
    "list_planners",
    "describe_planners",
]
