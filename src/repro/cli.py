"""Command-line interface for the E-BLOW reproduction.

Examples
--------
Generate an instance and plan it::

    eblow generate --kind 1D --characters 200 --regions 4 --out inst.json
    eblow plan --instance inst.json --out plan.json

Reproduce the paper's tables and figures (scaled down by default; pass
``--scale 1.0`` or set ``REPRO_PAPER_SCALE=1`` for paper-scale instances)::

    eblow table3
    eblow table4 --cases 2D-1 2M-1
    eblow table5
    eblow fig5
    eblow fig11
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import __version__
from repro.core.onedim import EBlow1DPlanner
from repro.core.twodim import EBlow2DPlanner
from repro.evaluation import format_comparison_table
from repro.experiments import (
    run_fig5,
    run_fig6,
    run_fig11_12,
    run_table3,
    run_table4,
    run_table5,
)
from repro.io import load_instance, save_instance, save_plan
from repro.workloads import build_instance, default_scale, generate_1d_instance, generate_2d_instance

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="eblow",
        description="E-BLOW: overlapping-aware stencil planning for e-beam MCC systems",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic OSP instance")
    generate.add_argument("--kind", choices=["1D", "2D"], default="1D")
    generate.add_argument("--characters", type=int, default=200)
    generate.add_argument("--regions", type=int, default=1)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--stencil", type=float, default=500.0, help="square stencil edge")
    generate.add_argument("--case", help="named benchmark case (overrides the options above)")
    generate.add_argument("--scale", type=float, default=None)
    generate.add_argument("--out", required=True)

    plan = sub.add_parser("plan", help="plan an instance with E-BLOW")
    plan.add_argument("--instance", required=True)
    plan.add_argument("--out", default=None)

    for name, helptext in (
        ("table3", "reproduce Table 3 (1DOSP comparison)"),
        ("table4", "reproduce Table 4 (2DOSP comparison)"),
        ("table5", "reproduce Table 5 (exact ILP vs E-BLOW)"),
        ("fig11", "reproduce Figs. 11-12 (E-BLOW-0 vs E-BLOW-1 ablation)"),
    ):
        cmd = sub.add_parser(name, help=helptext)
        cmd.add_argument("--cases", nargs="*", default=None)
        cmd.add_argument("--scale", type=float, default=None)
        cmd.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    fig5 = sub.add_parser("fig5", help="reproduce Fig. 5 (rounding convergence trace)")
    fig5.add_argument("--cases", nargs="*", default=None)
    fig5.add_argument("--scale", type=float, default=None)

    fig6 = sub.add_parser("fig6", help="reproduce Fig. 6 (last-LP value distribution)")
    fig6.add_argument("--case", default="1M-1")
    fig6.add_argument("--scale", type=float, default=None)
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.case:
        instance = build_instance(args.case, args.scale or default_scale())
    elif args.kind == "1D":
        instance = generate_1d_instance(
            num_characters=args.characters,
            num_regions=args.regions,
            seed=args.seed,
            stencil_width=args.stencil,
            stencil_height=args.stencil,
        )
    else:
        instance = generate_2d_instance(
            num_characters=args.characters,
            num_regions=args.regions,
            seed=args.seed,
            stencil_width=args.stencil,
            stencil_height=args.stencil,
        )
    save_instance(instance, args.out)
    print(
        f"wrote {instance.kind} instance {instance.name!r} with "
        f"{instance.num_characters} characters to {args.out}"
    )
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    planner = EBlow1DPlanner() if instance.kind == "1D" else EBlow2DPlanner()
    plan = planner.plan(instance)
    print(
        f"{instance.name}: writing time {plan.stats['writing_time']:.0f}, "
        f"{plan.stats['num_selected']} characters on stencil, "
        f"{plan.stats['runtime_seconds']:.2f}s"
    )
    if args.out:
        save_plan(plan, args.out)
        print(f"wrote plan to {args.out}")
    return 0


def _print_comparison(comparison, as_json: bool, reference: str = "e-blow") -> None:
    if as_json:
        print(json.dumps(comparison.to_dict(), indent=2, default=str))
    else:
        print(format_comparison_table(comparison, reference=reference))


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "table3":
        _print_comparison(run_table3(args.cases, args.scale), args.json)
        return 0
    if args.command == "table4":
        _print_comparison(run_table4(args.cases, args.scale), args.json)
        return 0
    if args.command == "table5":
        comparison = run_table5(
            cases_1d=[c for c in (args.cases or []) if c.startswith("1T")] or None,
            cases_2d=[c for c in (args.cases or []) if c.startswith("2T")] or None,
        )
        _print_comparison(comparison, args.json)
        return 0
    if args.command == "fig11":
        comparison = run_fig11_12(args.cases, args.scale)
        _print_comparison(comparison, args.json, reference="e-blow-1")
        return 0
    if args.command == "fig5":
        traces = run_fig5(tuple(args.cases) if args.cases else ("1M-1", "1M-2", "1M-3", "1M-4"), args.scale)
        for case, trace in traces.items():
            print(f"{case}: unsolved per iteration = {trace}")
        return 0
    if args.command == "fig6":
        histogram = run_fig6(args.case, args.scale)
        print(f"case {histogram['case']}: {histogram['num_values']} LP values")
        for lo, hi, count in zip(
            histogram["bin_edges"], histogram["bin_edges"][1:], histogram["counts"]
        ):
            print(f"  {lo:.1f} - {hi:.1f}: {count}")
        return 0
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
