"""Command-line interface for the E-BLOW reproduction.

Examples
--------
Generate an instance and plan it (``--progress`` streams the PlanEvent
protocol; ``eblow planners`` lists the registry with capabilities)::

    eblow generate --kind 1D --characters 200 --regions 4 --out inst.json
    eblow plan --instance inst.json --planner eblow --out plan.json --progress
    eblow planners --verbose

Batch-serve a whole suite across worker processes (results are cached in the
content-addressed store, so re-runs are instant)::

    eblow batch --suite 1T --planner eblow --jobs 4 --manifest run.jsonl
    eblow portfolio --case 1M-1 --jobs 3
    eblow cache stats

Observe a run (``--metrics-out`` snapshots the :mod:`repro.obs` metrics
registry, ``--events-out`` records the event stream, and the ``stats`` /
``trace`` verbs render them afterwards)::

    eblow batch --suite 1T --jobs 2 --metrics-out metrics.json --events-out events.jsonl
    eblow stats metrics.json --format prom
    eblow trace events.jsonl

Reproduce the paper's tables and figures (scaled down by default; pass
``--scale 1.0`` or set ``REPRO_PAPER_SCALE=1`` for paper-scale instances)::

    eblow table3 --jobs 4
    eblow table4 --cases 2D-1 2M-1
    eblow table5
    eblow fig5
    eblow fig11
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from contextlib import contextmanager, nullcontext

from repro import __version__
from repro.evaluation import format_comparison_table
from repro.experiments import (
    run_fig5,
    run_fig6,
    run_fig11_12,
    run_table3,
    run_table4,
    run_table5,
)
from repro.io import load_instance, save_instance, save_plan
from repro.model import StencilPlan
from repro.workloads import build_instance, default_scale, generate_1d_instance, generate_2d_instance

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="eblow",
        description="E-BLOW: overlapping-aware stencil planning for e-beam MCC systems",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic OSP instance")
    generate.add_argument("--kind", choices=["1D", "2D"], default="1D")
    generate.add_argument("--characters", type=int, default=200)
    generate.add_argument("--regions", type=int, default=1)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--stencil", type=float, default=500.0, help="square stencil edge")
    generate.add_argument("--case", help="named benchmark case (overrides the options above)")
    generate.add_argument("--scale", type=float, default=None)
    generate.add_argument("--out", required=True)

    planners = sub.add_parser(
        "planners", help="list registered planners with capabilities and option schemas"
    )
    planners.add_argument("--kind", choices=["1D", "2D"], default=None)
    planners.add_argument(
        "--verbose", action="store_true", help="also print each planner's option schema"
    )
    planners.add_argument("--json", action="store_true", help="emit the full schema as JSON")

    plan = sub.add_parser("plan", help="plan an instance with a registered planner")
    plan.add_argument("--instance", required=True)
    plan.add_argument(
        "--planner",
        default="eblow",
        help="registered planner name (bare family names dispatch on instance kind; "
        "see `eblow planners`)",
    )
    plan.add_argument(
        "--time-limit",
        type=float,
        default=None,
        help="wall-clock seconds for the run (also passed to ILP planners)",
    )
    plan.add_argument(
        "--engine",
        choices=["auto", "copy", "incremental", "batched"],
        default=None,
        help="annealing engine for the 2D planners (placements, selection, and "
        "writing time are bit-identical under RNG lockstep; stats record which "
        "engine ran; copy is the reference engine, incremental the fast "
        "mutate/undo one, batched advances K chains per ufunc dispatch)",
    )
    plan.add_argument(
        "--chains",
        type=int,
        default=None,
        help="lockstep chain count for the batched engine (chain c is seeded "
        "seed + c; more than one chain makes --engine auto pick batched)",
    )
    plan.add_argument(
        "--progress",
        action="store_true",
        help="stream the planner's PlanEvent protocol (stages, LP solves, "
        "annealing temperature steps, incumbents) to stdout",
    )
    plan.add_argument(
        "--events-out",
        default=None,
        help="write the full event stream as JSONL telemetry to this file",
    )
    plan.add_argument(
        "--metrics-out",
        default=None,
        help="write a repro.obs metrics snapshot (JSON) for the run to this file",
    )
    plan.add_argument("--out", default=None)

    batch = sub.add_parser("batch", help="run a cases x planners grid through the worker pool")
    batch.add_argument("--cases", nargs="*", default=None, help="case or suite names (e.g. 1T 1M-3)")
    batch.add_argument("--suite", default=None, help="suite shorthand (1D, 1M, 2D, 2M, 1T, 2T, all)")
    batch.add_argument(
        "--planner",
        action="append",
        default=None,
        help="planner to run on every case (repeatable; default: eblow)",
    )
    batch.add_argument("--jobs", type=int, default=1, help="worker processes (1 = in-process)")
    batch.add_argument(
        "--chunksize",
        type=int,
        default=None,
        help="job descriptors per worker dispatch (default: sized to the "
        "batch and worker counts; larger amortises IPC, smaller streams "
        "results sooner)",
    )
    batch.add_argument("--scale", type=float, default=None)
    batch.add_argument("--timeout", type=float, default=None, help="per-job wall-clock seconds")
    batch.add_argument("--retries", type=int, default=0, help="re-runs for failed/timed-out jobs")
    batch.add_argument(
        "--supervise",
        action="store_true",
        help="run under the fault-tolerant supervisor: durable job leases, "
        "heartbeat-driven worker supervision, automatic re-queue with backoff "
        "on worker death, and poison-job quarantine",
    )
    batch.add_argument(
        "--journal",
        default=None,
        help="write the supervisor's JSONL job journal here (implies "
        "--supervise; default with --manifest: <manifest>.journal.jsonl)",
    )
    batch.add_argument(
        "--resume",
        action="store_true",
        help="resume a crashed batch from its journal: finished jobs are "
        "served from journal + store, only unfinished jobs re-execute "
        "(implies --supervise; needs --journal or --manifest)",
    )
    batch.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        help="supervised dispatch attempts per job before quarantine "
        "(implies --supervise; default 3)",
    )
    batch.add_argument(
        "--best-effort",
        action="store_true",
        help="keep E-BLOW's wall-clock ILP cap (faster under load, but plans may "
        "vary between runs; the default deterministic mode drops the cap so "
        "batch plans are bit-identical to serial runs)",
    )
    batch.add_argument("--no-cache", action="store_true", help="bypass the result store")
    batch.add_argument("--cache-dir", default=None, help="result-store root (default ~/.cache/eblow)")
    batch.add_argument("--manifest", default=None, help="write a JSONL telemetry manifest here")
    batch.add_argument(
        "--metrics-out",
        default=None,
        help="write a merged metrics snapshot (JSON) for the whole batch here; "
        "worker-process registries are folded into the parent's",
    )
    batch.add_argument(
        "--events-out",
        default=None,
        help="record every PlanEvent (including trace spans) as JSONL here; "
        "render with `eblow trace`",
    )
    batch.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    batch.add_argument("--list-planners", action="store_true", help="list registered planners and exit")
    batch.add_argument(
        "--broker",
        default=None,
        help="run the grid over a durable work-queue spool at this directory "
        "instead of the in-process pool: jobs are enqueued with fenced "
        "leases and served by `eblow worker` processes (--jobs of them are "
        "spawned here; 0 = rely on externally launched workers)",
    )
    batch.add_argument(
        "--broker-queue",
        default="default",
        help="queue name inside the broker spool (default: default)",
    )
    batch.add_argument(
        "--broker-timeout",
        type=float,
        default=None,
        help="seconds the broker driver waits without any spool progress "
        "before giving up (default: wait forever)",
    )

    portfolio = sub.add_parser("portfolio", help="race several planners on one instance")
    portfolio.add_argument("--case", default=None, help="named benchmark case")
    portfolio.add_argument("--instance", default=None, help="instance JSON file")
    portfolio.add_argument(
        "--planner",
        action="append",
        default=None,
        help="portfolio entrant (repeatable; default: greedy / E-BLOW-0 / E-BLOW-1)",
    )
    portfolio.add_argument("--jobs", type=int, default=None, help="worker processes (default: entrants)")
    portfolio.add_argument("--scale", type=float, default=None)
    portfolio.add_argument("--timeout", type=float, default=None, help="per-entrant wall-clock seconds")
    portfolio.add_argument("--budget", type=float, default=None, help="stop the race after this many seconds")
    portfolio.add_argument(
        "--target",
        type=float,
        default=None,
        help="stop the race as soon as a plan reaches this writing time",
    )
    portfolio.add_argument(
        "--straggler-grace",
        type=float,
        default=None,
        help="seconds stragglers may keep running past the first finisher "
        "unless their incumbent events beat the current winner",
    )
    portfolio.add_argument(
        "--progress",
        action="store_true",
        help="stream label-stamped PlanEvents from all entrants to stdout",
    )
    portfolio.add_argument("--no-cache", action="store_true", help="bypass the result store")
    portfolio.add_argument("--cache-dir", default=None)
    portfolio.add_argument("--manifest", default=None, help="write a JSONL telemetry manifest here")
    portfolio.add_argument(
        "--metrics-out",
        default=None,
        help="write a merged metrics snapshot (JSON) for the race to this file",
    )
    portfolio.add_argument("--out", default=None, help="write the winning plan here")
    portfolio.add_argument("--json", action="store_true")

    stats = sub.add_parser("stats", help="render a metrics snapshot or manifest")
    stats.add_argument(
        "source",
        help="metrics snapshot JSON (from --metrics-out) or a JSONL manifest "
        "containing a metrics record",
    )
    stats.add_argument(
        "--format",
        choices=["table", "prom", "json"],
        default="table",
        help="table (default), Prometheus text exposition, or raw JSON",
    )

    trace = sub.add_parser("trace", help="render a recorded event stream as a span trace")
    trace.add_argument(
        "source",
        help="JSONL event stream (from --events-out) or a manifest with event records",
    )
    trace.add_argument("--depth", type=int, default=None, help="truncate the tree display")
    trace.add_argument("--json", action="store_true", help="emit the span tree as JSON")

    jobs = sub.add_parser("jobs", help="inspect a supervisor job journal or a broker spool")
    jobs.add_argument(
        "journal",
        help="JSONL job journal (from batch --journal / --supervise), or a "
        "broker spool directory (from --broker) for live queue inspection",
    )
    jobs.add_argument(
        "--queue",
        default="default",
        help="queue name when inspecting a broker spool directory",
    )
    jobs.add_argument(
        "--ops",
        action="store_true",
        help="also print the raw lease-op history per job",
    )
    jobs.add_argument("--json", action="store_true", help="emit the replayed state as JSON")

    cache = sub.add_parser("cache", help="inspect, clear, or prune the result store")
    cache.add_argument("action", choices=["stats", "clear", "prune"])
    cache.add_argument("--cache-dir", default=None)
    cache.add_argument("--all-versions", action="store_true", help="clear every code version")
    cache.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="prune: evict least-recently-used entries until the store fits "
        "this byte budget (stale code versions age out first)",
    )
    cache.add_argument("--json", action="store_true")

    serve = sub.add_parser(
        "serve", help="run the resident planning daemon (NDJSON over a socket)"
    )
    serve.add_argument("--socket", default=None, help="Unix socket path to listen on")
    serve.add_argument("--host", default="127.0.0.1", help="TCP bind host (with --port)")
    serve.add_argument(
        "--port", type=int, default=None, help="TCP port (0 = ephemeral; prints the bound port)"
    )
    serve.add_argument("--workers", type=int, default=1, help="planner pool worker processes")
    serve.add_argument(
        "--max-inflight", type=int, default=2, help="concurrently executing flights (pool slots)"
    )
    serve.add_argument(
        "--per-client-queue",
        type=int,
        default=16,
        help="admission queue bound per client (beyond it: queue_full rejection)",
    )
    serve.add_argument(
        "--event-buffer",
        type=int,
        default=256,
        help="per-subscriber event buffer; overflow drops the oldest events",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        help="seconds a SIGTERM drain waits for in-flight work before escalating",
    )
    serve.add_argument("--retries", type=int, default=0, help="pool retries per failed job")
    serve.add_argument("--no-cache", action="store_true", help="bypass the result store")
    serve.add_argument("--cache-dir", default=None, help="result-store root (default ~/.cache/eblow)")
    serve.add_argument(
        "--prune-bytes",
        type=int,
        default=None,
        help="prune the store to this byte budget (LRU) during shutdown",
    )
    serve.add_argument(
        "--metrics-out",
        default=None,
        help="write the daemon's metrics snapshot here during shutdown",
    )
    serve.add_argument(
        "--broker",
        default=None,
        help="execute flights over a durable broker spool at this directory "
        "instead of an in-process pool (--workers `eblow worker` processes "
        "are spawned; 0 = rely on externally launched workers)",
    )
    serve.add_argument(
        "--broker-queue",
        default="default",
        help="queue name inside the broker spool (default: default)",
    )

    worker = sub.add_parser(
        "worker", help="serve a broker spool: claim, heartbeat, execute, commit"
    )
    worker.add_argument(
        "--broker", required=True, help="broker spool directory (from batch --broker)"
    )
    worker.add_argument("--queue", default="default", help="queue name inside the spool")
    worker.add_argument(
        "--worker-id", default=None, help="stable worker identity (default: pid-derived)"
    )
    worker.add_argument(
        "--poll", type=float, default=0.1, help="seconds between claim attempts when idle"
    )
    worker.add_argument(
        "--max-jobs", type=int, default=None, help="exit after this many jobs (default: run forever)"
    )
    worker.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        help="exit after this many seconds without claimable work (default: never)",
    )
    worker.add_argument(
        "--wait",
        type=float,
        default=10.0,
        help="seconds to wait for the spool to appear (drivers may create it late)",
    )
    worker.add_argument("--json", action="store_true", help="emit the exit summary as JSON")

    submit = sub.add_parser("submit", help="submit a plan request to a running daemon")
    submit.add_argument("--socket", default=None, help="daemon Unix socket path")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=None, help="daemon TCP port")
    submit.add_argument("--case", default=None, help="named benchmark case")
    submit.add_argument("--instance", default=None, help="instance JSON file (shipped inline)")
    submit.add_argument("--planner", default="eblow")
    submit.add_argument("--scale", type=float, default=None)
    submit.add_argument("--timeout", type=float, default=None)
    submit.add_argument("--label", default=None)
    submit.add_argument(
        "--burst",
        type=int,
        default=1,
        help="submit N concurrent duplicates (one connection each) — exercises "
        "the daemon's request coalescing",
    )
    submit.add_argument("--progress", action="store_true", help="stream PlanEvents to stdout")
    submit.add_argument("--out", default=None, help="write the resulting plan here")
    submit.add_argument("--json", action="store_true")

    watch = sub.add_parser(
        "watch", help="watch a running daemon: its status, or one job's event stream"
    )
    watch.add_argument(
        "job_id", nargs="?", default=None,
        help="job id to subscribe to (omit for the daemon's status)",
    )
    watch.add_argument("--socket", default=None, help="daemon Unix socket path")
    watch.add_argument("--host", default="127.0.0.1")
    watch.add_argument("--port", type=int, default=None, help="daemon TCP port")
    watch.add_argument("--json", action="store_true")

    for name, helptext in (
        ("table3", "reproduce Table 3 (1DOSP comparison)"),
        ("table4", "reproduce Table 4 (2DOSP comparison)"),
        ("table5", "reproduce Table 5 (exact ILP vs E-BLOW)"),
        ("fig11", "reproduce Figs. 11-12 (E-BLOW-0 vs E-BLOW-1 ablation)"),
    ):
        cmd = sub.add_parser(name, help=helptext)
        cmd.add_argument("--cases", nargs="*", default=None)
        cmd.add_argument("--scale", type=float, default=None)
        cmd.add_argument("--jobs", type=int, default=1, help="worker processes for the grid")
        cmd.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    fig5 = sub.add_parser("fig5", help="reproduce Fig. 5 (rounding convergence trace)")
    fig5.add_argument("--cases", nargs="*", default=None)
    fig5.add_argument("--scale", type=float, default=None)

    fig6 = sub.add_parser("fig6", help="reproduce Fig. 6 (last-LP value distribution)")
    fig6.add_argument("--case", default="1M-1")
    fig6.add_argument("--scale", type=float, default=None)
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.case:
        instance = build_instance(args.case, args.scale or default_scale())
    elif args.kind == "1D":
        instance = generate_1d_instance(
            num_characters=args.characters,
            num_regions=args.regions,
            seed=args.seed,
            stencil_width=args.stencil,
            stencil_height=args.stencil,
        )
    else:
        instance = generate_2d_instance(
            num_characters=args.characters,
            num_regions=args.regions,
            seed=args.seed,
            stencil_width=args.stencil,
            stencil_height=args.stencil,
        )
    save_instance(instance, args.out)
    print(
        f"wrote {instance.kind} instance {instance.name!r} with "
        f"{instance.num_characters} characters to {args.out}"
    )
    return 0


def _planner_options(
    planner: str,
    kind: str,
    time_limit: float | None,
    engine: str | None = None,
    chains: int | None = None,
) -> dict:
    """Options implied by CLI flags (ILP planners also get the time limit)."""
    from repro.runtime import resolve_planner

    options: dict = {}
    resolved = resolve_planner(planner, kind)
    if time_limit is not None and resolved.startswith("ilp"):
        options["time_limit"] = time_limit
    if engine is not None and resolved in ("eblow-2d", "sa-2d"):
        options["engine"] = engine
    if chains is not None and resolved in ("eblow-2d", "sa-2d", "sa-2d-batched"):
        options["chains"] = chains
    return options


def _cmd_planners(args: argparse.Namespace) -> int:
    from repro.api import describe_planners, iter_handles

    if args.json:
        print(json.dumps(describe_planners(args.kind), indent=2))
        return 0
    for handle in iter_handles(args.kind):
        caps = handle.capabilities
        flags = [caps.kind or "any"]
        if caps.deterministic:
            flags.append("deterministic")
        if caps.supports_engine:
            flags.append("engine=")
        if caps.supports_chains:
            flags.append("chains=")
        if caps.supports_warm_start:
            flags.append("warm-start")
        if caps.supports_time_limit:
            flags.append("time-limit")
        if caps.event_types:
            flags.append("events:" + ",".join(caps.event_types))
        print(f"{handle.name:12s} [{' '.join(flags)}] {handle.description}")
        if args.verbose:
            for option in handle.schema.fields:
                default = f" (default {option.default!r})" if option.default is not None else ""
                choices = f" one of {list(option.choices)}" if option.choices else ""
                print(f"    {option.name}: {option.type}{choices}{default} — {option.description}")
    return 0


def _write_events_out(path: str | None, result) -> None:
    """Persist a PlanResult's captured event stream as JSONL telemetry."""
    if not path:
        return
    from repro.runtime import Telemetry

    telemetry = Telemetry(path)
    for event in result.events:
        telemetry.record_event(event, job_id=result.job_id)
    print(f"wrote {len(result.events)} events to {path}")


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.api import PlanningError, plan as run_plan
    from repro.errors import ValidationError

    instance = load_instance(args.instance)
    try:
        options = _planner_options(
            args.planner,
            instance.kind,
            args.time_limit,
            getattr(args, "engine", None),
            getattr(args, "chains", None),
        )
    except ValidationError as exc:
        print(f"plan: {exc}", file=sys.stderr)
        return 2

    on_event = None
    if args.progress:
        def on_event(event) -> None:
            print(event.describe(), flush=True)

    # ILP planners enforce the limit inside the solver and return their
    # incumbent plan; arming the wall-clock job timeout too would fire first
    # (build + extraction overhead) and discard that incumbent.
    try:
        result = run_plan(
            instance,
            planner=args.planner,
            options=options,
            timeout=None if "time_limit" in options else args.time_limit,
            label=args.planner,
            on_event=on_event,
        )
    except PlanningError as exc:
        failed = exc.result
        detail = f"{failed.status} — {failed.error}" if failed is not None else str(exc)
        print(f"{instance.name}: {detail}", file=sys.stderr)
        if failed is not None:
            # The captured stream matters most on failures — keep it.
            _write_events_out(args.events_out, failed)
        return 1
    _write_events_out(args.events_out, result)
    print(
        f"{instance.name}: writing time {result.writing_time:.0f}, "
        f"{result.num_selected} characters on stencil, "
        f"{result.runtime_seconds:.2f}s"
    )
    if args.out:
        save_plan(result.plan_object(instance), args.out)
        print(f"wrote plan to {args.out}")
    return 0


def _batch_spec(name: str, deterministic: bool):
    """Planner spec for a batch column (E-BLOW gets reproducible-plan mode)."""
    from repro.runtime import PlannerSpec

    options = {}
    if deterministic and name.lower().replace("e-blow", "eblow").startswith("eblow"):
        options["deterministic"] = True
    return PlannerSpec(name, options)


def _batch_store(args):
    from repro.runtime import ResultStore

    if args.no_cache:
        return None
    return ResultStore(args.cache_dir)


@contextmanager
def _graceful_drain(pool, what: str):
    """SIGTERM/SIGINT → drain instead of dying mid-write.

    The first signal soft-cancels the pool's running jobs (``SIGUSR1`` —
    they resolve as ``cancelled`` and the loop winds down normally, so
    manifests, journals, and metrics snapshots are flushed on the way out);
    a second signal raises :class:`KeyboardInterrupt` for a hard stop.
    Yields a dict whose ``"flag"`` turns true once a drain was requested.
    """
    import signal as _signal

    interrupted = {"flag": False}

    def _handler(signum, frame):
        if interrupted["flag"]:
            raise KeyboardInterrupt
        interrupted["flag"] = True
        name = _signal.Signals(signum).name
        print(
            f"{what}: received {name}, draining (signal again to force quit)",
            file=sys.stderr,
            flush=True,
        )
        pool.cancel_running()

    previous = {}
    for signum in (_signal.SIGTERM, _signal.SIGINT):
        try:
            previous[signum] = _signal.signal(signum, _handler)
        except (ValueError, OSError):  # not the main thread / restricted env
            pass
    try:
        yield interrupted
    finally:
        for signum, old in previous.items():
            _signal.signal(signum, old)


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.runtime import (
        PlannerPool,
        PlannerSpec,
        Telemetry,
        grid_jobs,
        iter_jobs,
        list_planners,
    )
    from repro.workloads import resolve_cases

    if args.list_planners:
        for name, description in list_planners().items():
            print(f"{name:12s} {description}")
        return 0

    tokens = list(args.cases or [])
    if args.suite:
        tokens.insert(0, args.suite)
    if not tokens:
        print("batch: no cases given (use --cases and/or --suite)", file=sys.stderr)
        return 2
    from repro.errors import ValidationError

    try:
        cases = resolve_cases(tokens)
    except ValidationError as exc:
        print(f"batch: {exc}", file=sys.stderr)
        return 2
    planners = {
        name: _batch_spec(name, deterministic=not args.best_effort)
        for name in (args.planner or ["eblow"])
    }
    scale = args.scale if args.scale is not None else default_scale()

    broker_mode = args.broker is not None
    supervised = not broker_mode and (
        args.supervise
        or args.resume
        or args.journal is not None
        or args.max_attempts is not None
    )
    journal = None if broker_mode else args.journal
    if supervised and journal is None and args.manifest:
        # Default the journal next to the manifest so one --manifest flag
        # yields a fully resumable run (run.jsonl -> run.journal.jsonl).
        from pathlib import Path

        manifest_path = Path(args.manifest)
        journal = str(
            manifest_path.with_name(manifest_path.stem + ".journal" + (manifest_path.suffix or ".jsonl"))
        )
    if args.resume and journal is None and not broker_mode:
        print("batch: --resume needs --journal (or --manifest)", file=sys.stderr)
        return 2

    store = _batch_store(args)
    # A resumed run appends to the existing manifest instead of truncating it,
    # so the combined file tells the whole story of the crashed + resumed run.
    telemetry = Telemetry(args.manifest, append=args.resume)
    grid = grid_jobs(cases, planners, scale=scale, timeout=args.timeout)

    # --events-out records every PlanEvent as JSONL.  With worker processes
    # the sink is also installed as an emitting scope in this process so the
    # parent-side batch/dispatch spans are captured alongside the relayed
    # worker streams; inline runs skip the scope (the pool already wraps each
    # job in emitting(on_event) — a second scope would record every event
    # twice) and so carry per-job traces only.
    sink = None
    scope = nullcontext()
    if args.events_out:
        from repro.obs.tracing import span

        events_log = Telemetry(args.events_out)
        sink = events_log.record_event
        if args.jobs > 1:
            from repro.events import emitting

            scope = emitting(sink)
    else:
        span = None

    start = time.perf_counter()
    results = []
    scheduler = None
    if broker_mode:
        # Broker mode: dispatch over the durable spool — no in-process pool.
        # The spool is the journal (its ledger shares the JobJournal schema
        # and `eblow jobs <spool>` inspects it live), resume is implicit, and
        # the drain handler is the scheduler's own close (SIGTERM/SIGINT
        # terminate the owned fleet via the context manager below).
        from repro.dist import BrokerConfig, BrokerScheduler

        broker_config = BrokerConfig(
            max_attempts=args.max_attempts if args.max_attempts is not None else 3,
            store_dir=str(store.root) if store is not None else None,
        )
        scheduler = BrokerScheduler(
            args.broker,
            queue=args.broker_queue,
            config=broker_config,
            workers=max(0, args.jobs),
            wait_timeout=args.broker_timeout,
        )
        pool = nullcontext()
        drain = nullcontext({"flag": False})
    else:
        # One explicit warm pool for the whole invocation: workers (and their
        # per-digest instance caches) persist across every chunk of the grid,
        # and shutdown reclaims the arena segments deterministically.
        pool = PlannerPool(
            max_workers=args.jobs, retries=args.retries, chunksize=args.chunksize
        )
        drain = _graceful_drain(pool, "batch")
    with (scheduler or nullcontext()), pool, drain as interrupted, scope, (
        span("batch", jobs=args.jobs, cases=len(cases)) if span else nullcontext()
    ):
        for result in iter_jobs(
            grid,
            store=store,
            telemetry=telemetry,
            pool=None if broker_mode else pool,
            on_event=sink,
            supervise=supervised,
            journal=journal,
            resume=args.resume,
            max_attempts=None if broker_mode else args.max_attempts,
            scheduler=scheduler,
        ):
            results.append(result)
            if interrupted["flag"]:
                # Soft-cancelled jobs resolve as ``cancelled`` and stream out
                # here; stop consuming once the current dispatch settles so
                # the summary/manifest flush below still runs.
                break
            if not args.json:
                origin = "cache" if result.cache_hit else f"pid {result.worker_pid}"
                line = (
                    f"[{len(results):>3}/{len(grid)}] {result.case:>6} {result.label:<12} "
                    f"{result.status:<7} ({origin}, {result.wall_seconds:.2f}s"
                )
                if result.ok:
                    line += f", T={result.writing_time:.0f}, chars={result.num_selected}"
                line += ")"
                print(line, flush=True)
    wall = time.perf_counter() - start

    summary = telemetry.summary()
    summary["batch_wall_seconds"] = wall
    summary["jobs_per_second"] = (len(results) / wall) if wall > 0 else float("inf")
    summary["workers"] = args.jobs
    if args.json:
        payload = {"results": [r.to_dict() for r in results], "summary": summary}
        print(json.dumps(payload, indent=2, default=str))
    else:
        tail = ""
        if summary.get("cancelled"):
            tail += f", {summary['cancelled']} cancelled"
        if summary.get("quarantined"):
            tail += f", {summary['quarantined']} quarantined"
        print(
            f"\n{summary['jobs']} jobs in {wall:.2f}s "
            f"({summary['jobs_per_second']:.2f} jobs/s, --jobs {args.jobs}): "
            f"{summary['ok']} ok, {summary['errors']} errors, "
            f"{summary['timeouts']} timeouts, "
            f"{summary['cache_hits']} cache hits / {summary['cache_misses']} misses"
            + tail
        )
        if args.manifest:
            print(f"manifest written to {args.manifest}")
        if journal:
            print(f"journal written to {journal}")
        if broker_mode:
            print(f"broker spool at {args.broker} (inspect with `eblow jobs {args.broker}`)")
        if args.events_out:
            print(f"{len(events_log.records)} events written to {args.events_out}")
    if interrupted["flag"]:
        print(
            f"batch: drained after signal ({len(results)}/{len(grid)} jobs resolved)",
            file=sys.stderr,
        )
        return 1
    return 0 if summary["ok"] == summary["jobs"] else 1


_PORTFOLIO_DEFAULTS = {
    "1D": {
        "greedy": "greedy-1d",
        "e-blow-0": ("eblow-1d", {"ablated": True}),
        "e-blow-1": "eblow-1d",
    },
    "2D": {
        "greedy": "greedy-2d",
        "sa": "sa-2d",
        "sa-batched": "sa-2d-batched",
        "e-blow": "eblow-2d",
    },
}


def _cmd_portfolio(args: argparse.Namespace) -> int:
    from repro.runtime import PlannerSpec, Telemetry, run_portfolio

    if (args.case is None) == (args.instance is None):
        print("portfolio: give exactly one of --case or --instance", file=sys.stderr)
        return 2
    if args.instance is not None:
        target = load_instance(args.instance)
        kind = target.kind
        scale = None
    else:
        from repro.workloads import ALL_CASES

        case = ALL_CASES.get(args.case)
        if case is None:
            print(f"portfolio: unknown case {args.case!r}", file=sys.stderr)
            return 2
        target = args.case
        scale = args.scale if args.scale is not None else default_scale()
        # Tiny suites use their own kind tags; the planner kind is 1D/2D.
        kind = {"1T": "1D", "2T": "2D"}.get(case.kind, case.kind)

    if args.planner:
        entries = {name: PlannerSpec(name) for name in args.planner}
    else:
        entries = {
            label: PlannerSpec(*spec) if isinstance(spec, tuple) else PlannerSpec(spec)
            for label, spec in _PORTFOLIO_DEFAULTS[kind].items()
        }

    on_event = None
    if args.progress:
        def on_event(event) -> None:
            print(event.describe(), flush=True)

    telemetry = Telemetry(args.manifest)
    # An explicit pool (rather than letting run_portfolio create one) so the
    # signal handler can soft-cancel the entrants: SIGTERM/SIGINT drains the
    # race — stragglers resolve as cancelled, the outcome and its manifest /
    # metrics snapshot are flushed — instead of killing the process mid-write.
    from repro.runtime import PlannerPool, default_workers

    workers = default_workers(args.jobs) if args.jobs is None else max(1, args.jobs)
    pool = PlannerPool(max_workers=min(workers, len(entries)))
    with pool, _graceful_drain(pool, "portfolio"):
        outcome = run_portfolio(
            target,
            entries,
            scale=scale,
            timeout=args.timeout,
            budget=args.budget,
            target=args.target,
            straggler_grace=args.straggler_grace,
            on_event=on_event,
            store=_batch_store(args),
            telemetry=telemetry,
            pool=pool,
        )

    if args.json:
        payload = {
            "winner": outcome.winner.to_dict() if outcome.winner else None,
            "results": [r.to_dict() for r in outcome.results],
            "cancelled": outcome.cancelled,
            "wall_seconds": outcome.wall_seconds,
        }
        print(json.dumps(payload, indent=2, default=str))
    else:
        for result in sorted(outcome.results, key=lambda r: (r.status != "ok", r.writing_time)):
            marker = "*" if outcome.winner is result else " "
            detail = (
                f"T={result.writing_time:.0f}, chars={result.num_selected}, "
                f"{result.wall_seconds:.2f}s" + (", cache" if result.cache_hit else "")
                if result.ok
                else f"{result.status}: {result.error}"
            )
            print(f"{marker} {result.label:<12} {detail}")
        for label in outcome.cancelled:
            print(f"  {label:<12} cancelled (budget/target/straggler)")
        if outcome.winner is not None:
            print(
                f"winner: {outcome.winner.label} "
                f"(T={outcome.winner.writing_time:.0f}) in {outcome.wall_seconds:.2f}s"
            )
    if outcome.winner is None:
        print("portfolio: no entrant produced a plan", file=sys.stderr)
        return 1
    if args.out:
        instance = target if not isinstance(target, str) else build_instance(target, scale)
        save_plan(StencilPlan.from_dict(instance, outcome.winner.plan), args.out)
        print(f"wrote winning plan to {args.out}")
    return 0


def _with_metrics_snapshot(args: argparse.Namespace, run) -> int:
    """Run a command under a fresh metrics registry and export the snapshot.

    Installed process-wide for the duration of the command, the registry
    collects every series the run touches — worker-process registries are
    merged in by the pool as results are collected.  When ``--manifest`` is
    also given the snapshot is appended to the manifest as a ``metrics``
    record, so the JSONL file is a self-contained run report.
    """
    from repro.obs import metrics as obs_metrics
    from repro.obs.export import write_snapshot

    with obs_metrics.collecting() as registry:
        code = run(args)
    snapshot = registry.snapshot()
    write_snapshot(snapshot, args.metrics_out)
    print(f"wrote metrics snapshot to {args.metrics_out}")
    if getattr(args, "manifest", None):
        from repro.runtime import Telemetry

        Telemetry(args.manifest).record_metrics(snapshot)
    return code


def _load_metrics_source(path: str) -> dict:
    """A snapshot from a JSON file or the last metrics record of a manifest."""
    from repro.obs.export import validate_snapshot

    with open(path) as handle:
        text = handle.read()
    try:
        data = json.loads(text)
    except ValueError:
        data = None
    if isinstance(data, dict) and "metrics" in data:
        return validate_snapshot(data)
    snapshot = None
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and record.get("record") == "metrics":
            snapshot = {"v": record.get("v", 1), "metrics": record.get("metrics", {})}
    if snapshot is None:
        raise ValueError(f"no metrics snapshot or metrics record found in {path}")
    return validate_snapshot(snapshot)


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs.export import render_prometheus
    from repro.obs.report import render_metrics_table

    try:
        snapshot = _load_metrics_source(args.source)
    except (OSError, ValueError) as exc:
        print(f"stats: {exc}", file=sys.stderr)
        return 1
    if args.format == "json":
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    elif args.format == "prom":
        print(render_prometheus(snapshot), end="")
    else:
        print(render_metrics_table(snapshot), end="\n")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.report import render_report
    from repro.obs.tracing import TraceCollector

    collector = TraceCollector()
    try:
        with open(args.source) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    collector.add_event_dict(record)
    except OSError as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 1
    if not collector.spans():
        print(f"trace: no span events found in {args.source}", file=sys.stderr)
        return 1
    root = collector.tree()
    if args.json:
        print(json.dumps(root.to_dict(), indent=2))
        return 0
    # A manifest may also carry a metrics record; fold it into the report.
    try:
        snapshot = _load_metrics_source(args.source)
    except (OSError, ValueError):
        snapshot = None
    print(render_report(root, snapshot, max_depth=args.depth), end="")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.runtime import ResultStore

    store = ResultStore(args.cache_dir)
    if args.action == "stats":
        stats = store.stats()
        if args.json:
            print(json.dumps(stats, indent=2))
        else:
            print(f"store root: {stats['root']} (code version {stats['version']})")
            print(f"entries: {stats['entries']} ({stats['bytes']} bytes)")
            for version, count in sorted(stats["per_version"].items()):
                print(f"  {version}: {count}")
        return 0
    if args.action == "prune":
        if args.max_bytes is None:
            print("cache: prune needs --max-bytes", file=sys.stderr)
            return 2
        report = store.prune(args.max_bytes)
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(
                f"evicted {report['evicted']} entries ({report['bytes_freed']} bytes); "
                f"{report['entries_remaining']} entries "
                f"({report['bytes_remaining']} bytes) remain under the "
                f"{args.max_bytes}-byte budget"
            )
        return 0
    removed = store.clear(all_versions=args.all_versions)
    scope = "all versions" if args.all_versions else f"version {store.version}"
    print(f"removed {removed} cached results ({scope})")
    return 0


def _serve_endpoint(args: argparse.Namespace, what: str) -> dict | None:
    """Client connection kwargs from --socket/--host/--port (or None + error)."""
    if (args.socket is None) == (args.port is None):
        print(f"{what}: give exactly one of --socket or --port", file=sys.stderr)
        return None
    if args.socket is not None:
        return {"socket": args.socket}
    return {"host": args.host, "port": args.port}


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.errors import ValidationError
    from repro.serve import PlanServer, ServeConfig

    try:
        config = ServeConfig(
            socket=args.socket,
            host=args.host,
            port=args.port,
            workers=max(1, args.workers),
            max_inflight=args.max_inflight,
            per_client_queue=args.per_client_queue,
            event_buffer=args.event_buffer,
            drain_grace=args.drain_grace,
            cache=not args.no_cache,
            cache_dir=args.cache_dir,
            prune_bytes=args.prune_bytes,
            metrics_out=args.metrics_out,
            retries=args.retries,
            broker=args.broker,
            broker_queue=args.broker_queue,
        )
    except ValidationError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    server = PlanServer(config)
    server.on_ready = lambda address: print(
        f"eblow serve: listening on {address}", flush=True
    )
    asyncio.run(server.run())
    print("eblow serve: drained, exiting", flush=True)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient, ServeError

    endpoint = _serve_endpoint(args, "submit")
    if endpoint is None:
        return 2
    if (args.case is None) == (args.instance is None):
        print("submit: give exactly one of --case or --instance", file=sys.stderr)
        return 2
    target = args.case if args.case is not None else load_instance(args.instance)
    kwargs = dict(
        planner=args.planner,
        scale=args.scale,
        timeout=args.timeout,
        label=args.label,
        check=False,
    )

    if args.burst > 1:
        # One connection per duplicate, submitted concurrently: the daemon
        # coalesces them onto a single pool execution — the per-request
        # outcomes printed below are the proof.
        import threading

        outcomes: list[tuple[str | None, object]] = [None] * args.burst

        def _one(index: int) -> None:
            try:
                with ServeClient(**endpoint) as client:
                    result = client.plan(target, **kwargs)
                    outcomes[index] = (client.last_outcome, result)
            except Exception as exc:  # noqa: BLE001 — reported per-slot below
                outcomes[index] = ("error", exc)

        threads = [
            threading.Thread(target=_one, args=(i,), name=f"submit-{i}")
            for i in range(args.burst)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        counts: dict[str, int] = {}
        ok = 0
        for item in outcomes:
            outcome, result = item if item is not None else ("error", None)
            counts[outcome] = counts.get(outcome, 0) + 1
            if getattr(result, "ok", False):
                ok += 1
        if args.json:
            print(json.dumps({"burst": args.burst, "ok": ok, "outcomes": counts}, indent=2))
        else:
            summary = ", ".join(f"{count}x {name}" for name, count in sorted(counts.items()))
            print(f"burst of {args.burst}: {ok} ok ({summary})")
        return 0 if ok == args.burst else 1

    on_event = None
    if args.progress:
        def on_event(event) -> None:
            print(event.describe(), flush=True)

    try:
        with ServeClient(**endpoint) as client:
            result = client.plan(target, on_event=on_event, **kwargs)
            outcome = client.last_outcome
    except ServeError as exc:
        print(f"submit: [{exc.code}] {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, default=str))
    else:
        detail = (
            f"T={result.writing_time:.0f}, chars={result.num_selected}, "
            f"{result.wall_seconds:.2f}s"
            if result.ok
            else f"{result.status}: {result.error}"
        )
        print(f"{result.case} {result.label}: {detail} [{outcome}]")
    if args.out and result.plan is not None:
        instance = (
            target if not isinstance(target, str)
            else build_instance(target, args.scale or default_scale())
        )
        save_plan(StencilPlan.from_dict(instance, result.plan), args.out)
        print(f"wrote plan to {args.out}")
    return 0 if result.ok else 1


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient, ServeError

    endpoint = _serve_endpoint(args, "watch")
    if endpoint is None:
        return 2
    try:
        with ServeClient(**endpoint) as client:
            if args.job_id is None:
                status = client.status()
                if args.json:
                    print(json.dumps(status, indent=2, sort_keys=True))
                else:
                    print(
                        f"uptime {status['uptime_seconds']:.1f}s, "
                        f"{status['connections']} connections, "
                        f"{status['inflight']} in flight, {status['queued']} queued"
                        + (", draining" if status.get("draining") else "")
                    )
                    requests = status.get("requests", {})
                    summary = ", ".join(
                        f"{count} {name}" for name, count in sorted(requests.items()) if count
                    )
                    print(f"requests: {summary or 'none yet'}")
                    store = status.get("store", {})
                    if store.get("enabled"):
                        print(
                            f"store: {store['hits']}/{store['probes']} hits "
                            f"({store['hit_rate']:.0%})"
                        )
                    for job_id, flight in sorted(status.get("flights", {}).items()):
                        print(
                            f"  {job_id[:16]} {flight['kind']} {flight['state']} "
                            f"(waiters={flight['waiters']}, subscribers={flight['subscribers']})"
                        )
                return 0
            for event in client.iter_events(args.job_id):
                print(event.describe(), flush=True)
            done = getattr(client, "last_done", None) or {}
            print(f"job {args.job_id[:16]} {done.get('status') or 'done'}")
            return 0
    except ServeError as exc:
        print(f"watch: [{exc.code}] {exc}", file=sys.stderr)
        return 1


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.dist import run_worker
    from repro.errors import ValidationError

    try:
        summary = run_worker(
            args.broker,
            args.queue,
            worker_id=args.worker_id,
            poll_interval=args.poll,
            max_jobs=args.max_jobs,
            idle_exit=args.idle_exit,
            wait=args.wait,
        )
    except (ValidationError, OSError) as exc:
        print(f"worker: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        outcomes = ", ".join(
            f"{count} {name}"
            for name, count in sorted(summary.items())
            if name not in ("worker", "jobs") and count
        )
        print(
            f"worker {summary['worker']}: {summary['jobs']} jobs"
            + (f" ({outcomes})" if outcomes else "")
        )
    return 0


def _cmd_jobs_broker(args: argparse.Namespace) -> int:
    """`eblow jobs <spool-dir>`: live broker-queue inspection."""
    from repro.dist import Broker
    from repro.errors import ValidationError

    try:
        broker = Broker.open(args.journal, queue=args.queue)
    except ValidationError as exc:
        print(f"jobs: {exc}", file=sys.stderr)
        return 1
    view = broker.inspect()
    if args.json:
        print(json.dumps(view, indent=2, sort_keys=True))
        return 0
    counts = view["counts"]
    summary = ", ".join(f"{counts[state]} {state}" for state in counts)
    print(f"queue {view['queue']!r} at {args.journal}: {summary}")
    if view["workers"]:
        print("\nworkers:")
        for worker in view["workers"]:
            liveness = "alive" if worker["alive"] else "DEAD"
            print(
                f"  {worker['worker']:<24} pid={worker['pid']:<8} "
                f"{liveness:<5} last heartbeat {worker['age']:.1f}s ago"
            )
    if view["leases"]:
        print("\nleases:")
        for lease in view["leases"]:
            flag = "  STALE" if lease["stale"] else ""
            print(
                f"  {lease['job_id'][:12]} epoch={lease['epoch']} "
                f"worker={lease['worker']} age={lease['age']:.1f}s{flag}"
            )
    if view["quarantined"]:
        print("\nquarantined:")
        for entry in view["quarantined"]:
            print(
                f"  {entry['job_id'][:12]} attempts={entry['attempts']} "
                f"error={entry['error']!r}"
            )
    if args.ops:
        from repro.runtime import JobJournal

        ledger = broker.ledger_path
        if ledger.exists():
            print(f"\nledger ({ledger}):")
            for record in JobJournal.read(ledger):
                detail = {
                    k: v
                    for k, v in record.items()
                    if k not in ("record", "v", "job_id", "op", "ts")
                }
                print(
                    f"  {str(record.get('job_id', '-'))[:12]:<12} "
                    f"{record.get('op', '?'):<14} {detail if detail else ''}"
                )
    stale = sum(1 for lease in view["leases"] if lease["stale"])
    return 0 if not stale and not view["quarantined"] else 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.runtime import JobJournal

    if os.path.isdir(args.journal):
        return _cmd_jobs_broker(args)
    try:
        records = JobJournal.read(args.journal)
    except OSError as exc:
        print(f"jobs: {exc}", file=sys.stderr)
        return 1
    state = JobJournal.replay(args.journal)
    if args.json:
        print(json.dumps(state, indent=2, sort_keys=True))
        return 0
    counts: dict[str, int] = {}
    for job_id, entry in state.items():
        counts[entry["state"]] = counts.get(entry["state"], 0) + 1
        line = (
            f"{job_id[:12]} {entry.get('case', '?'):>6} "
            f"{entry.get('label', entry.get('planner', '?')):<12} "
            f"{entry['state']:<11} attempts={entry['attempts']}"
        )
        if entry.get("error"):
            line += f" error={entry['error']!r}"
        print(line)
        if args.ops:
            for record in records:
                if record.get("job_id") != job_id:
                    continue
                detail = {
                    k: v
                    for k, v in record.items()
                    if k not in ("record", "v", "job_id", "op", "ts")
                }
                print(f"    {record.get('op', '?'):<14} {detail if detail else ''}")
    total = len(state)
    summary = ", ".join(f"{count} {name}" for name, count in sorted(counts.items()))
    print(f"\n{total} jobs ({summary or 'none'}) in {args.journal}")
    return 0 if counts.get("pending", 0) == 0 else 1


def _print_comparison(comparison, as_json: bool, reference: str = "e-blow") -> None:
    if as_json:
        print(json.dumps(comparison.to_dict(), indent=2, default=str))
    else:
        print(format_comparison_table(comparison, reference=reference))


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "planners":
        return _cmd_planners(args)
    for command, handler in (
        ("plan", _cmd_plan),
        ("batch", _cmd_batch),
        ("portfolio", _cmd_portfolio),
    ):
        if args.command == command:
            if args.metrics_out:
                return _with_metrics_snapshot(args, handler)
            return handler(args)
    if args.command == "serve":
        # The daemon owns its registry for its whole lifetime and writes the
        # snapshot itself during the drain — never wrap it in
        # _with_metrics_snapshot (which would uninstall mid-serve).
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "jobs":
        return _cmd_jobs(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "table3":
        _print_comparison(run_table3(args.cases, args.scale, jobs=args.jobs), args.json)
        return 0
    if args.command == "table4":
        _print_comparison(run_table4(args.cases, args.scale, jobs=args.jobs), args.json)
        return 0
    if args.command == "table5":
        comparison = run_table5(
            cases_1d=[c for c in (args.cases or []) if c.startswith("1T")] or None,
            cases_2d=[c for c in (args.cases or []) if c.startswith("2T")] or None,
            jobs=args.jobs,
        )
        _print_comparison(comparison, args.json)
        return 0
    if args.command == "fig11":
        comparison = run_fig11_12(args.cases, args.scale, jobs=args.jobs)
        _print_comparison(comparison, args.json, reference="e-blow-1")
        return 0
    if args.command == "fig5":
        traces = run_fig5(tuple(args.cases) if args.cases else ("1M-1", "1M-2", "1M-3", "1M-4"), args.scale)
        for case, trace in traces.items():
            print(f"{case}: unsolved per iteration = {trace}")
        return 0
    if args.command == "fig6":
        histogram = run_fig6(args.case, args.scale)
        print(f"case {histogram['case']}: {histogram['num_values']} LP values")
        for lo, hi, count in zip(
            histogram["bin_edges"], histogram["bin_edges"][1:], histogram["counts"]
        ):
            print(f"  {lo:.1f} - {hi:.1f}: {count}")
        return 0
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
