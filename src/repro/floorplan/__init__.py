"""Floorplanning substrate: sequence pair, packing, simulated annealing."""

from repro.floorplan.annealing import (
    AnnealingResult,
    AnnealingSchedule,
    Move,
    MoveTypeStats,
    simulated_annealing,
    simulated_annealing_in_place,
)
from repro.floorplan.batched import BatchedAnnealer, BatchedAnnealingResult
from repro.floorplan.fixed_outline import (
    FixedOutlinePacker,
    FixedOutlineResult,
    RegionTimeModel,
)
from repro.floorplan.packing import (
    Block,
    IncrementalPacker,
    PackerMove,
    PackingContext,
    PackingResult,
    Rotate,
    ShiftNegative,
    ShiftPositive,
    SwapBoth,
    SwapNegative,
    SwapPositive,
    pack_sequence_pair,
)
from repro.floorplan.sequence_pair import SequencePair

__all__ = [
    "SequencePair",
    "Block",
    "PackingContext",
    "PackingResult",
    "pack_sequence_pair",
    "IncrementalPacker",
    "PackerMove",
    "SwapPositive",
    "SwapNegative",
    "SwapBoth",
    "Rotate",
    "ShiftNegative",
    "ShiftPositive",
    "AnnealingSchedule",
    "AnnealingResult",
    "Move",
    "MoveTypeStats",
    "simulated_annealing",
    "simulated_annealing_in_place",
    "BatchedAnnealer",
    "BatchedAnnealingResult",
    "FixedOutlinePacker",
    "FixedOutlineResult",
    "RegionTimeModel",
]
