"""Floorplanning substrate: sequence pair, packing, simulated annealing."""

from repro.floorplan.annealing import AnnealingResult, AnnealingSchedule, simulated_annealing
from repro.floorplan.fixed_outline import (
    FixedOutlinePacker,
    FixedOutlineResult,
    RegionTimeModel,
)
from repro.floorplan.packing import Block, PackingContext, PackingResult, pack_sequence_pair
from repro.floorplan.sequence_pair import SequencePair

__all__ = [
    "SequencePair",
    "Block",
    "PackingContext",
    "PackingResult",
    "pack_sequence_pair",
    "AnnealingSchedule",
    "AnnealingResult",
    "simulated_annealing",
    "FixedOutlinePacker",
    "FixedOutlineResult",
    "RegionTimeModel",
]
