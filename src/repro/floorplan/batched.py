"""Batched multi-chain simulated annealing over stacked sequence pairs.

The incremental engine (PR 3) drove the per-move cost of one annealing chain
down to the exact-maintenance floor: only ~14 coordinates genuinely change
per move, so what remains is Python interpreter overhead — dispatching a few
dozen small NumPy kernels and list operations per move.  This module spends
that overhead once for **K chains at a time**: :class:`BatchedAnnealer`
holds K independent sequence-pair chains in structure-of-arrays form and
advances all of them with one ufunc dispatch per DP step.

Layout (the part that makes it fast)
------------------------------------

All per-chain, per-position state lives in *position-major* stacked arrays
of shape ``(n, M)`` with ``M = 2K`` columns: column ``c < K`` carries chain
``c``'s **horizontal** problem (widths, right/left blanks, Gamma+ ranks) and
column ``K + c`` its **vertical** problem (heights, top/bottom blanks,
*negated* ranks).  Negating the ranks folds the two longest-path recurrences
into one: both axes use the predecessor mask ``R[p] < R[k]``, so a single
``(k, M)`` ufunc advances the x *and* y DP of every chain at once.

On top of the stacked geometry the annealer maintains a masked edge tensor
``E[k, p, m] = W[p, m] - min(G1[p, m], G2[k, m])`` where the predecessor
mask holds and ``-inf`` where it does not.  Each DP step is then just

    ``XS[k] = max(XS[:k] + E[k, :k], axis=0)`` clipped at ``0.0``

— two ``(k, M)``-sized ufuncs plus one ``(M,)`` clip.  A swap move touches
exactly two Gamma- positions per chain, so only four rows/columns of ``E``
per chain are refreshed per move (from the same formula, hence exactly).
The tensor costs ``n^2 * 2K * 8`` bytes; above :data:`~BatchedAnnealer.
MAX_TENSOR_BYTES` the annealer falls back to computing edges inside the DP
step (same bits, more dispatches) instead of materialising ``E``.

Bit-identity contract
---------------------

Chain ``c`` consumes its own ``random.Random(seed + c)`` exactly like a solo
:meth:`FixedOutlinePacker.pack` run with ``seed + c`` (including the two
initial shuffles when no seed pair is given), and every arithmetic step —
edge weights, longest paths, inside masks, region-time deltas, rebases,
penalties, Metropolis acceptance — reproduces the incremental engine's IEEE
operations operation for operation.  Consequently ``chains=1`` is
bit-identical to ``engine="incremental"`` under RNG lockstep, and for K>1
every chain is bit-identical to a solo run seeded ``seed + c`` (asserted in
``tests/floorplan/test_batched_engine.py``).  The per-chain Metropolis draw
and the per-chain region-time delta fold stay as tiny Python loops *by
design*: ``random.Random`` consumption is data-dependent and NumPy's
pairwise summation depends on operand shape, so vectorising either would
break the bit-identity contract.

Masked undo
-----------

All three swap moves are involutions, so rejecting a subset of chains undoes
them by *re-applying* the same move restricted to the rejected chains (fancy
indexing on the chain axis) and re-refreshing the same two ``E``
rows/columns — which restores the tensor exactly because the refresh is a
pure function of the (restored) permutation and geometry.  The DP values
``XS`` need no undo at all: they are recomputed from scratch each move.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

import numpy as np

from repro.events import emit
from repro.floorplan.annealing import _ANNEAL_ACCEPTS, _ANNEAL_MOVES, _ANNEAL_RUNS
from repro.floorplan.packing import _REBASES
from repro.floorplan.annealing import (
    AnnealingResult,
    AnnealingSchedule,
    MoveTypeStats,
)
from repro.floorplan.sequence_pair import SequencePair

__all__ = ["BatchedAnnealer", "BatchedAnnealingResult"]

_NEG_INF = float("-inf")
#: Move-kind vocabulary, indexed by the per-chain move-type draw.
KIND_NAMES = ("swap_positive", "swap_negative", "swap_both", "none")


def _sample_two(rng: random.Random, n: int) -> tuple[int, int]:
    """``rng.sample(range(n), 2)`` with identical RNG consumption, inlined.

    ``random.sample`` burns several microseconds per call on an abc
    ``isinstance`` check and generic bookkeeping — measurable when K chains
    sample every move.  This reproduces its two code paths for ``k=2`` over
    ``range(n)`` exactly (the pool shuffle below 22 elements, rejection
    sampling above), drawing the same ``_randbelow`` sequence so batched
    chains stay in RNG lockstep with solo runs.  Guarded by a test that
    checks agreement with ``rng.sample`` across sizes, so a future stdlib
    change cannot silently break lockstep.
    """
    randbelow = rng._randbelow
    if n <= 21:  # random.sample's small-population pool path (k=2)
        i = randbelow(n)
        j = randbelow(n - 1)
        return i, (n - 1 if j == i else j)
    i = randbelow(n)
    j = randbelow(n)
    while j == i:
        j = randbelow(n)
    return i, j


@dataclass
class BatchedAnnealingResult:
    """Per-chain outcome of one batched annealing run.

    ``moves`` counts moves *per chain* (every chain advances in lockstep);
    the aggregate move count is ``moves * chains``.  ``cost_traces`` is a
    ``(samples, chains)`` array sampled every ``effective_trace_stride``
    temperatures (see :attr:`BatchedAnnealer.MAX_TRACE_ENTRIES` for why the
    effective stride may exceed the schedule's).
    """

    chains: int
    best_pairs: list[SequencePair]
    best_costs: np.ndarray  # (K,)
    best_chain: int
    moves: int
    accepted: np.ndarray  # (K,)
    cost_traces: np.ndarray  # (samples, K)
    proposed_by_kind: np.ndarray  # (K, len(KIND_NAMES))
    accepted_by_kind: np.ndarray
    improved_by_kind: np.ndarray
    restarts: np.ndarray  # (K,)
    effective_trace_stride: int

    def move_stats_for(self, chain: int) -> dict[str, MoveTypeStats]:
        """Per-kind statistics of one chain (solo-engine dict shape)."""
        stats: dict[str, MoveTypeStats] = {}
        for k, name in enumerate(KIND_NAMES):
            proposed = int(self.proposed_by_kind[chain, k])
            if proposed:
                stats[name] = MoveTypeStats(
                    proposed=proposed,
                    accepted=int(self.accepted_by_kind[chain, k]),
                    improved=int(self.improved_by_kind[chain, k]),
                )
        return stats

    def annealing_result_for(self, chain: int) -> AnnealingResult:
        """One chain's trajectory as a solo :class:`AnnealingResult`."""
        return AnnealingResult(
            best_state=self.best_pairs[chain],
            best_cost=float(self.best_costs[chain]),
            moves=self.moves,
            accepted=int(self.accepted[chain]),
            cost_trace=[float(v) for v in self.cost_traces[:, chain]],
            move_stats=self.move_stats_for(chain),
        )


class BatchedAnnealer:
    """K lockstep sequence-pair annealing chains in stacked arrays.

    Construct with the owning :class:`~repro.floorplan.fixed_outline.
    FixedOutlinePacker` (outline, blocks, cost model, and rebase interval are
    read from it) and call :meth:`run`.  Chain ``c`` is seeded
    ``seed + c``; when ``initial`` is given all chains start from that pair,
    otherwise each chain shuffles its own starting pair from its own RNG —
    either way matching a solo run with the same arguments.
    """

    #: Above this, the ``(n, n, 2K)`` masked edge tensor is not materialised
    #: and edges are recomputed inside each DP step instead (identical bits,
    #: roughly 2x slower per move).  n=240 at K=32 fits in ~30 MB.
    MAX_TENSOR_BYTES = 256 * 1024 * 1024
    #: Soft cap on total cost-trace entries across all chains: the effective
    #: trace stride is raised above ``schedule.trace_stride`` when
    #: ``chains * temperatures`` would exceed it, so K-chain runs at long
    #: schedules stay bounded instead of holding one float per chain per
    #: temperature forever.
    MAX_TRACE_ENTRIES = 8192

    def __init__(
        self,
        packer,
        schedule: AnnealingSchedule | None = None,
        chains: int = 1,
        seed: int = 0,
        initial: SequencePair | None = None,
    ) -> None:
        if chains < 1:
            raise ValueError(f"chains must be >= 1, got {chains}")
        context = packer._context
        if context is None:
            raise ValueError("BatchedAnnealer needs a non-empty block set")
        self.packer = packer
        self.context = context
        self.schedule = schedule or AnnealingSchedule()
        self.chains = K = int(chains)
        self.seed = seed
        self.names = context.names
        self.n = n = context._n
        self.rebase_interval = int(packer.REBASE_INTERVAL)
        self._has_model = packer._model_reductions is not None
        self._reductions = packer._model_reductions
        self._vsb = packer._model_vsb

        # Per-chain RNG streams.  random.Random consumption is
        # data-dependent (MT19937 rejection sampling), so a stacked
        # generator cannot reproduce solo trajectories; one small Python
        # loop per move samples all K streams instead.
        self._rngs = [random.Random(seed + c) for c in range(K)]
        self._range_n = range(n)

        # Stacked permutations, canonical block order: (K, n).
        self.by_rank = np.empty((K, n), dtype=np.intp)
        self.order = np.empty((K, n), dtype=np.intp)
        self.rank_of = np.empty((K, n), dtype=np.intp)
        self.pos_of = np.empty((K, n), dtype=np.intp)
        index = context.index
        arange_n = self._arange_n = np.arange(n, dtype=np.intp)
        for c, rng in enumerate(self._rngs):
            pair = initial
            if pair is None:
                pair = SequencePair.initial(self.names, rng)
            self.by_rank[c] = [index[nm] for nm in pair.positive]
            self.order[c] = [index[nm] for nm in pair.negative]
            self.rank_of[c, self.by_rank[c]] = arange_n
            self.pos_of[c, self.order[c]] = arange_n

        # Position-major stacked geometry: (n, M) with M = 2K columns
        # (x-problems first, y-problems — with negated ranks — second).
        M = self._m = 2 * K
        self.W = np.empty((n, M))
        self.G1 = np.empty((n, M))
        self.G2 = np.empty((n, M))
        self.R = np.empty((n, M))
        for c in range(K):
            self._load_columns(c)

        tensor_bytes = n * n * M * 8
        self._tensor = n >= 2 and tensor_bytes <= self.MAX_TENSOR_BYTES
        self._E = None
        if self._tensor:
            self._build_tensor()

        # DP state + scratch (allocated once, reused every move).
        self._xs = np.zeros((n, M))
        self._dpbuf = np.empty((n, M))
        self._dpmask = np.empty((n, M), dtype=bool)
        self._sumbuf = np.empty((n, M))
        self._extbuf = np.empty(M)
        self._inxbuf = np.empty((n, K), dtype=bool)
        self._inybuf = np.empty((n, K), dtype=bool)
        self._chain_rows = np.arange(K, dtype=np.intp)[:, None]
        self._chain_ids = np.arange(K, dtype=np.intp)

        # Cost caches (the delta-cost protocol, rows = chains).
        self._cand_mask = np.empty((K, n), dtype=bool)
        self._chgbuf = np.empty((K, n), dtype=bool)
        self.base_mask = np.empty((K, n), dtype=bool)
        num_regions = len(self._vsb) if self._has_model else 0
        self.base_times = np.empty((K, num_regions))
        self._cand_times = np.empty((K, num_regions))
        self._deltas_since_rebase = 0
        self._ovbuf = np.empty(K)
        self._ovbuf2 = np.empty(K)
        self._costbuf = np.empty(K)
        self._wlim = packer.width + 1e-9
        self._hlim = packer.height + 1e-9
        self._denom = max(packer.width, 1.0)

    # ------------------------------------------------------------------ #
    # Stacked-state construction
    # ------------------------------------------------------------------ #
    def _load_columns(self, c: int) -> None:
        """(Re)build chain ``c``'s stacked geometry/rank columns."""
        context = self.context
        K = self.chains
        o = self.order[c]
        ranks = self.rank_of[c, o].astype(np.float64)
        self.R[:, c] = ranks
        self.R[:, K + c] = -ranks
        self.W[:, c] = context.widths[o]
        self.W[:, K + c] = context.heights[o]
        self.G1[:, c] = context.blank_right[o]
        self.G1[:, K + c] = context.blank_top[o]
        self.G2[:, c] = context.blank_left[o]
        self.G2[:, K + c] = context.blank_bottom[o]

    def _build_tensor(self) -> None:
        """Materialise the full masked edge tensor ``E``."""
        n, M = self.n, self._m
        self._E = E = np.empty((n, n, M))
        tmp = np.empty((n, M))
        for k in range(n):
            np.minimum(self.G1, self.G2[k], out=tmp)
            np.subtract(self.W, tmp, out=tmp)
            E[k] = np.where(self.R < self.R[k], tmp, _NEG_INF)

    def _rebuild_tensor_columns(self, c: int) -> None:
        """Rebuild chain ``c``'s two tensor slabs (after a restart)."""
        K = self.chains
        for m in (c, K + c):
            rm = self.R[:, m]
            edges = self.W[:, m][None, :] - np.minimum(
                self.G1[:, m][None, :], self.G2[:, m][:, None]
            )
            self._E[:, :, m] = np.where(rm[None, :] < rm[:, None], edges, _NEG_INF)

    # ------------------------------------------------------------------ #
    # Batched longest-path DP
    # ------------------------------------------------------------------ #
    def _dp(self) -> None:
        """Recompute all chains' x/y coordinates (Gamma- order) in ``_xs``.

        Per step, every candidate is ``xs[p] + (W[p] - min(G1[p], G2[k]))``
        exactly as in :meth:`PackingContext.pack_arrays` (the edge is formed
        *before* adding ``xs``, preserving float association), and the
        masked fold equals ``maximum.reduce(..., where=mask, initial=0.0)``:
        with the tensor, unmasked entries are ``-inf`` and a reduce with
        ``initial=0.0`` ignores them; without it, candidates are multiplied
        by the boolean mask (zeroing unmasked entries — multiplying by 1.0
        is exact) and reduced the same way.  Both give
        ``max(0, masked candidates)``.  ``maximum.reduce`` is called
        directly (not via ``np.max``) to skip the ``fromnumeric`` wrapper —
        at ~50k reduces per run the wrapper alone costs double-digit
        percent.
        """
        xs = self._xs
        xs[0, :] = 0.0
        buf = self._dpbuf
        max_reduce = np.maximum.reduce
        if self._tensor:
            E = self._E
            for k in range(1, self.n):
                b = buf[:k]
                np.add(xs[:k], E[k, :k], out=b)
                max_reduce(b, axis=0, out=xs[k], initial=0.0)
        else:
            W, G1, G2, R = self.W, self.G1, self.G2, self.R
            maskbuf = self._dpmask
            for k in range(1, self.n):
                b = buf[:k]
                m = maskbuf[:k]
                np.minimum(G1[:k], G2[k], out=b)
                np.subtract(W[:k], b, out=b)
                np.add(b, xs[:k], out=b)
                np.less(R[:k], R[k], out=m)
                np.multiply(b, m, out=b)
                max_reduce(b, axis=0, out=xs[k], initial=0.0)

    # ------------------------------------------------------------------ #
    # Vectorized move application (and — by involution — undo)
    # ------------------------------------------------------------------ #
    def _apply_moves(self, kinds, ii, jj, chain_subset):
        """Apply the sampled swaps on ``chain_subset`` rows.

        Every swap is an involution, so calling this again with the same
        arguments *reverts* the move for those chains — this is the masked
        undo path for rejected chains.  Tensor rows/columns of the two
        touched Gamma- positions are refreshed from the current (possibly
        restored) state, so undo restores them bit-exactly.
        """
        sub_kinds = kinds[chain_subset]
        K = self.chains
        touched_chains = []
        touched_u = []
        touched_v = []

        cs = chain_subset[sub_kinds == 0]
        if cs.size:  # swap_positive: Gamma+ ranks i<->j, geometry untouched
            i, j = ii[cs], jj[cs]
            a = self.by_rank[cs, i]
            b = self.by_rank[cs, j]
            self.by_rank[cs, i] = b
            self.by_rank[cs, j] = a
            self.rank_of[cs, a] = j
            self.rank_of[cs, b] = i
            pa = self.pos_of[cs, a]
            pb = self.pos_of[cs, b]
            jf = j.astype(np.float64)
            if_ = i.astype(np.float64)
            R = self.R
            R[pa, cs] = jf
            R[pb, cs] = if_
            R[pa, cs + K] = -jf
            R[pb, cs + K] = -if_
            touched_chains.append(cs)
            touched_u.append(pa)
            touched_v.append(pb)

        cs = chain_subset[sub_kinds == 1]
        if cs.size:  # swap_negative: Gamma- positions i<->j (occupants move)
            i, j = ii[cs], jj[cs]
            a = self.order[cs, i]
            b = self.order[cs, j]
            self.order[cs, i] = b
            self.order[cs, j] = a
            self.pos_of[cs, a] = j
            self.pos_of[cs, b] = i
            cols = np.concatenate([cs, cs + K])
            i2 = np.concatenate([i, i])
            j2 = np.concatenate([j, j])
            for arr in (self.R, self.W, self.G1, self.G2):
                tmp = arr[i2, cols]
                arr[i2, cols] = arr[j2, cols]
                arr[j2, cols] = tmp
            touched_chains.append(cs)
            touched_u.append(i)
            touched_v.append(j)

        cs = chain_subset[sub_kinds == 2]
        if cs.size:  # swap_both: ranks i<->j then the occupants' positions
            i, j = ii[cs], jj[cs]
            a = self.by_rank[cs, i]
            b = self.by_rank[cs, j]
            self.by_rank[cs, i] = b
            self.by_rank[cs, j] = a
            self.rank_of[cs, a] = j
            self.rank_of[cs, b] = i
            pa = self.pos_of[cs, a]
            pb = self.pos_of[cs, b]
            self.order[cs, pa] = b
            self.order[cs, pb] = a
            self.pos_of[cs, a] = pb
            self.pos_of[cs, b] = pa
            # Net rank at each touched position is unchanged (the occupant
            # and the rank swap together), so R stays put; only geometry
            # columns exchange between the two positions.
            cols = np.concatenate([cs, cs + K])
            pa2 = np.concatenate([pa, pa])
            pb2 = np.concatenate([pb, pb])
            for arr in (self.W, self.G1, self.G2):
                tmp = arr[pa2, cols]
                arr[pa2, cols] = arr[pb2, cols]
                arr[pb2, cols] = tmp
            touched_chains.append(cs)
            touched_u.append(pa)
            touched_v.append(pb)

        if self._tensor and touched_chains:
            self._refresh_edges(
                np.concatenate(touched_chains),
                np.concatenate(touched_u),
                np.concatenate(touched_v),
            )

    def _refresh_edges(self, cs, u, v) -> None:
        """Refresh tensor rows+columns of positions ``u``/``v`` per chain.

        A swap perturbs entries of ``E[:, :, m]`` involving the two touched
        positions only: their row (position as DP successor) and column
        (position as predecessor), for both the x and y slab of each chain.
        Values are recomputed from the same formula the full build uses, so
        maintained entries never drift from a fresh rebuild.
        """
        K = self.chains
        m_vec = np.concatenate([cs, cs + K, cs, cs + K])
        p_vec = np.concatenate([u, u, v, v])
        R, W, G1, G2, E = self.R, self.W, self.G1, self.G2, self._E
        # Work in (L, n) orientation, L = 4 * len(cs): row-gathers of the
        # transposed views are contiguous, and both scatters below then take
        # their value arrays without a transpose walk.
        rt = R.T[m_vec]
        wt = W.T[m_vec]
        g1t = G1.T[m_vec]
        g2t = G2.T[m_vec]
        rp = R[p_vec, m_vec][:, None]
        rows = np.where(
            rt < rp, wt - np.minimum(g1t, G2[p_vec, m_vec][:, None]), _NEG_INF
        )
        E[p_vec, :, m_vec] = rows
        cols = np.where(
            rp < rt,
            W[p_vec, m_vec][:, None] - np.minimum(G1[p_vec, m_vec][:, None], g2t),
            _NEG_INF,
        )
        # Adjacent advanced indices keep the broadcast dims in place, so the
        # indexed view is (n, L); cols is (L, n).
        E[:, p_vec, m_vec] = cols.T

    # ------------------------------------------------------------------ #
    # Cost evaluation (mirrors FixedOutlinePacker._inplace_cost)
    # ------------------------------------------------------------------ #
    def _geometry(self):
        """Bounding boxes and canonical inside masks of all chains."""
        K = self.chains
        S = self._sumbuf
        np.add(self._xs, self.W, out=S)
        ext = np.maximum.reduce(S, axis=0, out=self._extbuf)
        pw = ext[:K]
        ph = ext[K:]
        in_o = np.less_equal(S[:, :K], self._wlim, out=self._inxbuf)
        np.less_equal(S[:, K:], self._hlim, out=self._inybuf)
        in_o &= self._inybuf
        mask = self._cand_mask
        mask[self._chain_rows, self.order] = in_o.T
        return pw, ph, mask

    def _penalized(self, writing_times, pw, ph):
        """Vectorized :meth:`FixedOutlinePacker._penalized_dims`."""
        ov = self._ovbuf
        np.subtract(pw, self.packer.width, out=ov)
        np.maximum(ov, 0.0, out=ov)
        ov2 = self._ovbuf2
        np.subtract(ph, self.packer.height, out=ov2)
        np.maximum(ov2, 0.0, out=ov2)
        ov += ov2
        np.multiply(ov, self.packer.area_weight, out=ov)
        ov /= self._denom
        ov += 1.0
        return np.multiply(writing_times, ov, out=self._costbuf)

    def _evaluate_initial(self) -> np.ndarray:
        """Full first evaluation: seeds the base mask/times caches."""
        self._dp()
        pw, ph, mask = self._geometry()
        if not self._has_model:
            return self._costs_without_model(mask, pw, ph).copy()
        reductions = self._reductions
        for c in range(self.chains):
            self.base_times[c] = self._vsb - reductions[mask[c]].sum(axis=0)
        self.base_mask[:] = mask
        writing_times = self.base_times.max(axis=1)
        return self._penalized(writing_times, pw, ph).copy()

    def _evaluate(self):
        """Candidate costs of the current (mutated) configurations.

        Returns ``(costs, mask, times)``; the mask/times buffers are reused
        every move, so accepted rows must be *copied* into the base caches.
        The per-chain delta fold below intentionally stays a Python loop
        over only the chains whose inside/outside status changed: NumPy's
        pairwise summation depends on the number of rows summed, so folding
        all chains through one matmul would change low bits vs. solo runs.
        """
        pw, ph, mask = self._geometry()
        if not self._has_model:
            return self._costs_without_model(mask, pw, ph), mask, None
        changed = np.not_equal(mask, self.base_mask, out=self._chgbuf)
        cand_times = self._cand_times
        np.copyto(cand_times, self.base_times)
        reductions = self._reductions
        # Hoist the boolean algebra out of the per-chain loop: two (K, n)
        # ufuncs replace two (n,) ufuncs per changed chain.  Only the
        # reduction-row sums stay per chain (see docstring).
        entered_all = mask & changed
        left_all = self.base_mask & changed
        entered_any = entered_all.any(axis=1)
        left_any = left_all.any(axis=1)
        for c in np.nonzero(entered_any | left_any)[0]:
            if entered_any[c]:
                cand_times[c] -= reductions[entered_all[c]].sum(axis=0)
            if left_any[c]:
                cand_times[c] += reductions[left_all[c]].sum(axis=0)
        self._deltas_since_rebase += 1
        if self._deltas_since_rebase >= self.rebase_interval:
            self._deltas_since_rebase = 0
            for c in range(self.chains):
                cand_times[c] = self._vsb - reductions[mask[c]].sum(axis=0)
            _REBASES.inc(scope="region-times")
            emit(
                "rebase",
                scope="region-times",
                interval=self.rebase_interval,
                chains=self.chains,
            )
        writing_times = np.maximum.reduce(cand_times, axis=1)
        return self._penalized(writing_times, pw, ph), mask, cand_times

    def _costs_without_model(self, mask, pw, ph) -> np.ndarray:
        """Callback-based costs (no region-time model): per-chain Python."""
        packer = self.packer
        names = self.names
        costs = self._costbuf
        for c in range(self.chains):
            inside = {names[i] for i in np.nonzero(mask[c])[0]}
            writing_time = packer.writing_time_of(inside)
            costs[c] = packer._penalized_dims(
                writing_time, float(pw[c]), float(ph[c])
            )
        return costs

    # ------------------------------------------------------------------ #
    # The annealing loop
    # ------------------------------------------------------------------ #
    def _effective_stride(self, num_temperatures: int) -> int:
        stride = max(1, self.schedule.trace_stride)
        cap_stride = -(-num_temperatures * self.chains // self.MAX_TRACE_ENTRIES)
        return max(stride, cap_stride, 1)

    def run(self) -> BatchedAnnealingResult:
        schedule = self.schedule
        K = self.chains
        n = self.n
        kinds = np.empty(K, dtype=np.intp)
        ii = np.empty(K, dtype=np.intp)
        jj = np.empty(K, dtype=np.intp)
        chain_ids = self._chain_ids
        rngs = self._rngs
        null_moves = n < 2

        cur_costs = self._evaluate_initial()
        scales = np.maximum(np.abs(cur_costs), 1.0)
        best_costs = cur_costs.copy()
        best_by_rank = self.by_rank.copy()
        best_order = self.order.copy()

        temperatures = list(schedule.temperatures())
        stride = self._effective_stride(len(temperatures))
        traces = [cur_costs.copy()]
        sampler_steps = 0

        moves = 0
        accepted_count = np.zeros(K, dtype=np.int64)
        proposed = np.zeros((K, len(KIND_NAMES)), dtype=np.int64)
        accepted = np.zeros_like(proposed)
        improved = np.zeros_like(proposed)
        restarts = np.zeros(K, dtype=np.int64)
        restart_after = schedule.restart_after
        temps_since_improve = np.zeros(K, dtype=np.int64)
        improved_this_temp = np.zeros(K, dtype=bool)

        for temperature in temperatures:
            effective_t = temperature * scales
            for _ in range(schedule.moves_per_temperature):
                if moves >= schedule.max_total_moves:
                    break
                moves += 1
                if null_moves:
                    kinds.fill(3)
                else:
                    for c in range(K):
                        rng = rngs[c]
                        # _randbelow(3) is what rng.randrange(3) consumes;
                        # _sample_two mirrors rng.sample(range(n), 2).
                        kinds[c] = rng._randbelow(3)
                        i, j = _sample_two(rng, n)
                        ii[c] = i
                        jj[c] = j
                    self._apply_moves(kinds, ii, jj, chain_ids)
                    self._dp()
                cand_costs, cand_mask, cand_times = self._evaluate()
                proposed[chain_ids, kinds] += 1
                deltas = cand_costs - cur_costs
                accept = deltas <= 0.0
                if not accept.all():
                    for c in np.nonzero(~accept)[0]:
                        # The conditional Metropolis draw must stay per
                        # chain: solo runs only consume rng.random() when
                        # delta > 0, and math.exp matches their bits.
                        u01 = rngs[c].random()
                        if u01 < math.exp(
                            -deltas[c] / max(effective_t[c], 1e-12)
                        ):
                            accept[c] = True
                    rejected = np.nonzero(~accept)[0]
                    if rejected.size and not null_moves:
                        self._apply_moves(kinds, ii, jj, rejected)
                if accept.any():
                    cur_costs[accept] = cand_costs[accept]
                    if self._has_model:
                        self.base_mask[accept] = cand_mask[accept]
                        self.base_times[accept] = cand_times[accept]
                    accepted_count += accept
                    acc_idx = chain_ids[accept]
                    accepted[acc_idx, kinds[accept]] += 1
                    strict = accept & (deltas < 0.0)
                    if strict.any():
                        improved[chain_ids[strict], kinds[strict]] += 1
                    better = cur_costs < best_costs
                    if better.any():
                        idxs = np.nonzero(better)[0]
                        best_costs[idxs] = cur_costs[idxs]
                        best_by_rank[idxs] = self.by_rank[idxs]
                        best_order[idxs] = self.order[idxs]
                        improved_this_temp |= better
                        for c in idxs:
                            emit(
                                "incumbent",
                                cost=float(best_costs[c]),
                                moves=moves,
                                chain=int(c),
                            )
            sampler_steps += 1
            if sampler_steps % stride == 0:
                traces.append(cur_costs.copy())
            emit(
                "temperature",
                temperature=temperature,
                cost=float(cur_costs.min()),
                moves=moves,
                chains=K,
            )
            if restart_after is not None and restart_after > 0 and not null_moves:
                temps_since_improve = np.where(
                    improved_this_temp, 0, temps_since_improve + 1
                )
                improved_this_temp[:] = False
                stale = temps_since_improve >= restart_after
                if stale.any():
                    idxs = np.nonzero(stale)[0]
                    self._restart(idxs, best_by_rank, best_order)
                    cur_costs[idxs] = best_costs[idxs]
                    temps_since_improve[idxs] = 0
                    restarts[idxs] += 1
            if moves >= schedule.max_total_moves:
                break
        if sampler_steps % stride != 0:
            traces.append(cur_costs.copy())

        names = self.names
        best_pairs = [
            SequencePair(
                positive=tuple(names[b] for b in best_by_rank[c]),
                negative=tuple(names[b] for b in best_order[c]),
            )
            for c in range(K)
        ]
        # End-of-run accounting only (see repro.floorplan.annealing): moves
        # counts chain-moves (K per dispatch) so engines are comparable.
        _ANNEAL_RUNS.inc(engine="batched")
        _ANNEAL_MOVES.inc(moves * K, engine="batched")
        _ANNEAL_ACCEPTS.inc(int(accepted_count.sum()), engine="batched")
        return BatchedAnnealingResult(
            chains=K,
            best_pairs=best_pairs,
            best_costs=best_costs,
            best_chain=int(np.argmin(best_costs)),
            moves=moves,
            accepted=accepted_count,
            cost_traces=np.stack(traces, axis=0),
            proposed_by_kind=proposed,
            accepted_by_kind=accepted,
            improved_by_kind=improved,
            restarts=restarts,
            effective_trace_stride=stride,
        )

    def _restart(self, idxs, best_by_rank, best_order) -> None:
        """Reset stale chains to their best-known state (restart_after).

        Restarted chains resume from their incumbent permutation with fully
        re-derived caches; their RNG streams are untouched, so the remaining
        chains' trajectories are unaffected.  (Restarts are off by default —
        the bit-identity contract vs. solo runs only covers
        ``restart_after=None``.)
        """
        arange_n = self._arange_n
        for c in idxs:
            self.by_rank[c] = best_by_rank[c]
            self.order[c] = best_order[c]
            self.rank_of[c, self.by_rank[c]] = arange_n
            self.pos_of[c, self.order[c]] = arange_n
            self._load_columns(c)
            if self._tensor:
                self._rebuild_tensor_columns(int(c))
        if self._has_model:
            self._dp()
            _, _, mask = self._geometry()
            reductions = self._reductions
            for c in idxs:
                self.base_mask[c] = mask[c]
                self.base_times[c] = self._vsb - reductions[mask[c]].sum(axis=0)
