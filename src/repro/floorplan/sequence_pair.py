"""Sequence-pair floorplan representation [Murata et al. 1996].

A sequence pair is two permutations (Gamma+, Gamma-) of the block names.
Their relative order encodes the pairwise geometric relation:

* ``a`` before ``b`` in *both* sequences  →  ``a`` is left of ``b``,
* ``a`` after ``b`` in Gamma+ but before ``b`` in Gamma-  →  ``a`` is below ``b``.

The E-BLOW 2D flow (like the framework of [24] it compares against) explores
the space of sequence pairs with simulated annealing; the perturbation moves
are provided here, the coordinate computation lives in
:mod:`repro.floorplan.packing`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ValidationError

__all__ = ["SequencePair"]


@dataclass(frozen=True)
class SequencePair:
    """An immutable sequence pair over a set of block names."""

    positive: tuple[str, ...]
    negative: tuple[str, ...]

    def __post_init__(self) -> None:
        if sorted(self.positive) != sorted(self.negative):
            raise ValidationError("the two sequences must contain the same blocks")
        if len(set(self.positive)) != len(self.positive):
            raise ValidationError("sequence pair contains duplicate block names")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def initial(cls, names: Sequence[str], rng: random.Random | None = None) -> "SequencePair":
        """A random initial sequence pair (or identity order when no RNG given)."""
        names = list(names)
        if rng is None:
            return cls(positive=tuple(names), negative=tuple(names))
        positive = list(names)
        negative = list(names)
        rng.shuffle(positive)
        rng.shuffle(negative)
        return cls(positive=tuple(positive), negative=tuple(negative))

    @property
    def size(self) -> int:
        return len(self.positive)

    # ------------------------------------------------------------------ #
    # Relations
    # ------------------------------------------------------------------ #
    def is_left_of(self, a: str, b: str) -> bool:
        """Whether block ``a`` is constrained to the left of ``b``."""
        pos_p = {name: i for i, name in enumerate(self.positive)}
        pos_n = {name: i for i, name in enumerate(self.negative)}
        return pos_p[a] < pos_p[b] and pos_n[a] < pos_n[b]

    def is_below(self, a: str, b: str) -> bool:
        """Whether block ``a`` is constrained below ``b``."""
        pos_p = {name: i for i, name in enumerate(self.positive)}
        pos_n = {name: i for i, name in enumerate(self.negative)}
        return pos_p[a] > pos_p[b] and pos_n[a] < pos_n[b]

    # ------------------------------------------------------------------ #
    # Annealing moves
    # ------------------------------------------------------------------ #
    def swap_positive(self, i: int, j: int) -> "SequencePair":
        """Swap two positions in Gamma+ only."""
        positive = list(self.positive)
        positive[i], positive[j] = positive[j], positive[i]
        return SequencePair(positive=tuple(positive), negative=self.negative)

    def swap_negative(self, i: int, j: int) -> "SequencePair":
        """Swap two positions in Gamma- only."""
        negative = list(self.negative)
        negative[i], negative[j] = negative[j], negative[i]
        return SequencePair(positive=self.positive, negative=tuple(negative))

    def swap_both(self, a: str, b: str) -> "SequencePair":
        """Swap two blocks in both sequences (exchanges their roles entirely)."""
        def swapped(seq: tuple[str, ...]) -> tuple[str, ...]:
            out = list(seq)
            ia, ib = out.index(a), out.index(b)
            out[ia], out[ib] = out[ib], out[ia]
            return tuple(out)

        return SequencePair(positive=swapped(self.positive), negative=swapped(self.negative))

    def random_neighbor(self, rng: random.Random) -> "SequencePair":
        """A random neighbouring sequence pair (uniform over the three moves)."""
        if self.size < 2:
            return self
        move = rng.randrange(3)
        i, j = rng.sample(range(self.size), 2)
        if move == 0:
            return self.swap_positive(i, j)
        if move == 1:
            return self.swap_negative(i, j)
        return self.swap_both(self.positive[i], self.positive[j])
