"""Fixed-outline, selection-aware floorplanning for OSP.

Following [24] (and Section 4.2 of the E-BLOW paper), the 2DOSP problem is
attacked as *fixed-outline floorplanning*: blocks are packed by a sequence
pair; any block whose placement falls outside the stencil outline is simply
**not selected** (it will be written by VSB).  The annealer therefore
minimizes the system writing time of the blocks that remain inside, with a
small area-efficiency term as a tie breaker.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.floorplan.annealing import AnnealingResult, AnnealingSchedule, simulated_annealing
from repro.floorplan.packing import Block, PackingContext, PackingResult, pack_sequence_pair
from repro.floorplan.sequence_pair import SequencePair

__all__ = ["FixedOutlineResult", "FixedOutlinePacker"]


@dataclass
class FixedOutlineResult:
    """Outcome of a fixed-outline packing run."""

    inside: dict[str, tuple[float, float]]  # block name -> position
    packing: PackingResult
    pair: SequencePair
    cost: float
    annealing: AnnealingResult


class FixedOutlinePacker:
    """Sequence-pair simulated annealing inside a fixed outline.

    Parameters
    ----------
    width, height:
        The stencil outline.
    blocks:
        Blocks to pack (characters or clusters).
    writing_time_of:
        Callback mapping the *set of inside block names* to the writing-time
        objective being minimized (the caller closes over the instance and
        the block-to-character mapping).
    """

    def __init__(
        self,
        width: float,
        height: float,
        blocks: Mapping[str, Block],
        writing_time_of: Callable[[set[str]], float],
        area_weight: float = 0.05,
    ) -> None:
        self.width = width
        self.height = height
        self.blocks = dict(blocks)
        self.writing_time_of = writing_time_of
        self.area_weight = area_weight
        self._context = PackingContext(self.blocks) if self.blocks else None

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    def inside_blocks(self, packing: PackingResult) -> dict[str, tuple[float, float]]:
        """Blocks whose placement fits entirely inside the outline."""
        inside = {}
        for name, (x, y) in packing.positions.items():
            block = self.blocks[name]
            if x + block.width <= self.width + 1e-9 and y + block.height <= self.height + 1e-9:
                inside[name] = (x, y)
        return inside

    def cost_of(self, pair: SequencePair) -> float:
        """Cost of a sequence pair: writing time + small out-of-outline penalty."""
        context = self._context
        if context is None:
            return self.writing_time_of(set())
        x, y = context.pack_arrays(pair)
        inside_mask = (x + context.widths <= self.width + 1e-9) & (
            y + context.heights <= self.height + 1e-9
        )
        inside = {context.names[i] for i in range(len(context.names)) if inside_mask[i]}
        writing_time = self.writing_time_of(inside)
        # Small pressure to shrink the overall bounding box so that more
        # blocks can migrate inside the outline in later moves.
        packed_width = float((x + context.widths).max()) if len(x) else 0.0
        packed_height = float((y + context.heights).max()) if len(y) else 0.0
        overshoot = max(0.0, packed_width - self.width) + max(
            0.0, packed_height - self.height
        )
        return writing_time * (1.0 + self.area_weight * overshoot / max(self.width, 1.0))

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def pack(
        self,
        schedule: AnnealingSchedule | None = None,
        seed: int = 0,
        initial: SequencePair | None = None,
    ) -> FixedOutlineResult:
        """Run the annealer and return the best packing found.

        ``initial`` seeds the search with a known-good sequence pair (e.g. a
        shelf packing); the annealer keeps the best state ever visited, so the
        result is never worse than that starting point.
        """
        rng = random.Random(seed)
        names = sorted(self.blocks)
        if initial is None:
            initial = SequencePair.initial(names, rng)
        result = simulated_annealing(
            initial_state=initial,
            cost=self.cost_of,
            neighbor=lambda pair, r: pair.random_neighbor(r),
            schedule=schedule,
            rng=rng,
        )
        packing = pack_sequence_pair(result.best_state, self.blocks)
        inside = self.inside_blocks(packing)
        return FixedOutlineResult(
            inside=inside,
            packing=packing,
            pair=result.best_state,
            cost=result.best_cost,
            annealing=result,
        )
