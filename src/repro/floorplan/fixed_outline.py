"""Fixed-outline, selection-aware floorplanning for OSP.

Following [24] (and Section 4.2 of the E-BLOW paper), the 2DOSP problem is
attacked as *fixed-outline floorplanning*: blocks are packed by a sequence
pair; any block whose placement falls outside the stencil outline is simply
**not selected** (it will be written by VSB).  The annealer therefore
minimizes the system writing time of the blocks that remain inside, with a
small area-efficiency term as a tie breaker.

When the caller supplies a *region-time model* (an object exposing the
pure-VSB region times and the per-block reduction vectors, see
:class:`RegionTimeModel`), the packer evaluates moves through the annealer's
delta-cost protocol: the per-region writing-time vector of the current state
is cached and each candidate is scored by applying only the reduction rows
of the blocks whose inside/outside status actually changed — O(changed x P)
instead of O(inside x P) per move.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Mapping, Protocol, Sequence

import numpy as np

from repro.events import emit
from repro.floorplan.annealing import (
    AnnealingResult,
    AnnealingSchedule,
    simulated_annealing,
    simulated_annealing_in_place,
)
from repro.floorplan.packing import _REBASES
from repro.floorplan.batched import BatchedAnnealer, BatchedAnnealingResult
from repro.floorplan.packing import (
    Block,
    IncrementalPacker,
    NullMove,
    PackingContext,
    PackingResult,
    SwapBoth,
    SwapNegative,
    SwapPositive,
    pack_sequence_pair,
)
from repro.floorplan.sequence_pair import SequencePair

__all__ = ["FixedOutlineResult", "FixedOutlinePacker", "RegionTimeModel"]


class RegionTimeModel(Protocol):
    """Protocol for vectorized per-region writing-time evaluation of blocks."""

    def vsb_times_array(self) -> np.ndarray:
        """``(P,)`` pure-VSB region writing times."""
        ...

    def reduction_rows(self, names: Sequence[str]) -> np.ndarray:
        """``(len(names), P)`` reduction vectors, one row per block name."""
        ...


@dataclass
class FixedOutlineResult:
    """Outcome of a fixed-outline packing run."""

    inside: dict[str, tuple[float, float]]  # block name -> position
    packing: PackingResult
    pair: SequencePair
    cost: float
    annealing: AnnealingResult
    engine: str = "copy"
    # Populated by engine="batched": the per-chain view of the run.  ``pair``
    # / ``cost`` / ``annealing`` then describe the winning chain.
    batched: BatchedAnnealingResult | None = None


class FixedOutlinePacker:
    """Sequence-pair simulated annealing inside a fixed outline.

    Parameters
    ----------
    width, height:
        The stencil outline.
    blocks:
        Blocks to pack (characters or clusters).
    writing_time_of:
        Callback mapping the *set of inside block names* to the writing-time
        objective being minimized (the caller closes over the instance and
        the block-to-character mapping).
    time_model:
        Optional :class:`RegionTimeModel` equivalent of ``writing_time_of``.
        When given, moves are scored incrementally through the annealer's
        delta-cost protocol; results are identical up to floating-point
        noise (cross-checked in the test suite).
    """

    # Rebuild the cached region-time vector from scratch every this many
    # delta evaluations so floating-point drift stays bounded.
    REBASE_INTERVAL = 2048

    def __init__(
        self,
        width: float,
        height: float,
        blocks: Mapping[str, Block],
        writing_time_of: Callable[[set[str]], float],
        area_weight: float = 0.05,
        time_model: RegionTimeModel | None = None,
    ) -> None:
        self.width = width
        self.height = height
        self.blocks = dict(blocks)
        self.writing_time_of = writing_time_of
        self.area_weight = area_weight
        self._context = PackingContext(self.blocks) if self.blocks else None
        self.time_model = time_model
        if time_model is not None and self._context is not None:
            # Reduction rows aligned with the packing context's block order.
            self._model_reductions = np.asarray(
                time_model.reduction_rows(self._context.names), dtype=float
            )
            self._model_vsb = np.asarray(time_model.vsb_times_array(), dtype=float)
        else:
            self._model_reductions = None
            self._model_vsb = None
        # Delta-evaluation cache: inside mask + region times of the last
        # evaluated states (base = last accepted, last = last candidate).
        # Pair objects are held by reference (not id()) so identity checks
        # cannot be fooled by CPython address reuse after garbage collection.
        self._base_pair: SequencePair | None = None
        self._base_mask: np.ndarray | None = None
        self._base_times: np.ndarray | None = None
        self._last_pair: SequencePair | None = None
        self._last_mask: np.ndarray | None = None
        self._last_times: np.ndarray | None = None
        self._deltas_since_rebase = 0

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    def inside_blocks(self, packing: PackingResult) -> dict[str, tuple[float, float]]:
        """Blocks whose placement fits entirely inside the outline."""
        inside = {}
        for name, (x, y) in packing.positions.items():
            block = self.blocks[name]
            if x + block.width <= self.width + 1e-9 and y + block.height <= self.height + 1e-9:
                inside[name] = (x, y)
        return inside

    def _inside_mask(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        context = self._context
        return (x + context.widths <= self.width + 1e-9) & (
            y + context.heights <= self.height + 1e-9
        )

    def _penalized(self, writing_time: float, x: np.ndarray, y: np.ndarray) -> float:
        """Writing time with the small out-of-outline bounding-box penalty.

        The pressure to shrink the overall bounding box helps more blocks
        migrate inside the outline in later moves.
        """
        context = self._context
        packed_width = float((x + context.widths).max()) if len(x) else 0.0
        packed_height = float((y + context.heights).max()) if len(y) else 0.0
        return self._penalized_dims(writing_time, packed_width, packed_height)

    def _penalized_dims(
        self, writing_time: float, packed_width: float, packed_height: float
    ) -> float:
        overshoot = max(0.0, packed_width - self.width) + max(
            0.0, packed_height - self.height
        )
        return writing_time * (1.0 + self.area_weight * overshoot / max(self.width, 1.0))

    def cost_of(self, pair: SequencePair) -> float:
        """Cost of a sequence pair: writing time + small out-of-outline penalty."""
        context = self._context
        if context is None:
            return self.writing_time_of(set())
        x, y = context.pack_arrays(pair)
        inside_mask = self._inside_mask(x, y)
        if self._model_reductions is not None:
            times = self._model_vsb - self._model_reductions[inside_mask].sum(axis=0)
            writing_time = float(times.max())
            self._remember_last(pair, inside_mask, times)
        else:
            inside = {context.names[i] for i in np.nonzero(inside_mask)[0]}
            writing_time = self.writing_time_of(inside)
        return self._penalized(writing_time, x, y)

    # ------------------------------------------------------------------ #
    # Delta-cost protocol (incremental evaluation)
    # ------------------------------------------------------------------ #
    def _remember_last(
        self, pair: SequencePair, mask: np.ndarray, times: np.ndarray
    ) -> None:
        self._last_pair = pair
        self._last_mask = mask
        self._last_times = times

    def _base_for(self, current: SequencePair) -> tuple[np.ndarray, np.ndarray]:
        """Inside mask + region times of the annealer's current state."""
        if self._base_pair is not current:
            if self._last_pair is current:
                # The previous candidate was accepted: promote its evaluation.
                self._base_mask = self._last_mask
                self._base_times = self._last_times
            else:
                x, y = self._context.pack_arrays(current)
                self._base_mask = self._inside_mask(x, y)
                self._base_times = (
                    self._model_vsb
                    - self._model_reductions[self._base_mask].sum(axis=0)
                )
            self._base_pair = current
        return self._base_mask, self._base_times

    def delta_cost(
        self, current: SequencePair, candidate: SequencePair, current_cost: float
    ) -> float:
        """Candidate cost via incremental region-time update vs. ``current``.

        Only the reduction rows of blocks whose inside/outside status changed
        are applied to the cached time vector of the current state.
        """
        base_mask, base_times = self._base_for(current)
        x, y = self._context.pack_arrays(candidate)
        mask = self._inside_mask(x, y)
        changed = mask ^ base_mask
        if not changed.any():
            times = base_times
        else:
            entered = mask & changed
            left = base_mask & changed
            times = base_times.copy()
            if entered.any():
                times -= self._model_reductions[entered].sum(axis=0)
            if left.any():
                times += self._model_reductions[left].sum(axis=0)
        self._deltas_since_rebase += 1
        if self._deltas_since_rebase >= self.REBASE_INTERVAL:
            self._deltas_since_rebase = 0
            times = self._model_vsb - self._model_reductions[mask].sum(axis=0)
            _REBASES.inc(scope="region-times")
            emit("rebase", scope="region-times", interval=self.REBASE_INTERVAL)
        self._remember_last(candidate, mask, times)
        return self._penalized(float(times.max()), x, y)

    # ------------------------------------------------------------------ #
    # In-place (mutate/undo) engine
    # ------------------------------------------------------------------ #
    def _reset_delta_cache(self) -> None:
        """Forget cached evaluations from a previous ``pack`` run."""
        self._base_pair = None
        self._base_mask = None
        self._base_times = None
        self._last_pair = None
        self._last_mask = None
        self._last_times = None
        self._deltas_since_rebase = 0

    def _inplace_cost(self, state: "_InPlaceState") -> float:
        """Cost of the in-place state's current configuration.

        Mirrors :meth:`cost_of` (first call) and :meth:`delta_cost` (every
        later call) operation for operation: the same inside-mask, the same
        entered/left reduction updates against the last *accepted* state, and
        the same periodic rebase — so a trajectory through this function is
        bit-identical to the copy engine's.
        """
        packer = state.packer
        mask = packer.inside_mask(self.width, self.height)
        if self._model_reductions is None:
            inside = {self._context.names[i] for i in np.nonzero(mask)[0]}
            writing_time = self.writing_time_of(inside)
            return self._penalized_dims(writing_time, packer.width, packer.height)
        if state.base_mask is None:
            # Initial full evaluation (the copy engine's cost_of path).
            times = self._model_vsb - self._model_reductions[mask].sum(axis=0)
            state.base_mask = mask
            state.base_times = times
            return self._penalized_dims(float(times.max()), packer.width, packer.height)
        state.promote_pending()
        changed = mask ^ state.base_mask
        if not changed.any():
            times = state.base_times
        else:
            entered = mask & changed
            left = state.base_mask & changed
            times = state.base_times.copy()
            if entered.any():
                times -= self._model_reductions[entered].sum(axis=0)
            if left.any():
                times += self._model_reductions[left].sum(axis=0)
        state.deltas_since_rebase += 1
        if state.deltas_since_rebase >= self.REBASE_INTERVAL:
            state.deltas_since_rebase = 0
            times = self._model_vsb - self._model_reductions[mask].sum(axis=0)
            _REBASES.inc(scope="region-times")
            emit("rebase", scope="region-times", interval=self.REBASE_INTERVAL)
        state.pending_mask = mask
        state.pending_times = times
        return self._penalized_dims(float(times.max()), packer.width, packer.height)

    @staticmethod
    def _propose_swap(state: "_InPlaceState", rng: random.Random):
        """Uniform swap proposal, RNG-compatible with ``random_neighbor``.

        Only sequence-pair moves are proposed.  The in-place engine snapshots
        *just* the sequence pair for best-state tracking (the final packing
        is re-derived from ``self.blocks``), so geometry-mutating packer
        moves — ``Rotate``, which transposes a block — must not be proposed
        here; they are for standalone :class:`IncrementalPacker` use.
        """
        size = state.packer.size
        if size < 2:
            return NullMove()
        move = rng.randrange(3)
        i, j = rng.sample(range(size), 2)
        if move == 0:
            inner = SwapPositive(i, j)
        elif move == 1:
            inner = SwapNegative(i, j)
        else:
            inner = SwapBoth(i, j)
        return _EngineMove(inner)

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def pack(
        self,
        schedule: AnnealingSchedule | None = None,
        seed: int = 0,
        initial: SequencePair | None = None,
        engine: str = "auto",
        chains: int | None = None,
    ) -> FixedOutlineResult:
        """Run the annealer and return the best packing found.

        ``initial`` seeds the search with a known-good sequence pair (e.g. a
        shelf packing); the annealer keeps the best state ever visited, so the
        result is never worse than that starting point.

        ``engine`` selects the search engine: ``"incremental"`` runs the
        mutate/undo engine over an :class:`IncrementalPacker` (one mutable
        state, dirty-suffix packing updates, O(changed) cost updates);
        ``"copy"`` runs the copy-based reference engine; ``"batched"`` runs
        ``chains`` lockstep chains in stacked arrays (chain ``c`` seeded
        ``seed + c``) and returns the best chain.  ``"auto"`` picks the
        batched engine when more than one chain is requested and the
        incremental engine otherwise.  All engines visit bit-identical
        states under RNG lockstep (asserted in the test suite); they differ
        only in speed.  ``chains`` overrides ``schedule.chains`` when given.
        """
        if engine not in ("auto", "copy", "incremental", "batched"):
            raise ValueError(f"unknown annealing engine {engine!r}")
        schedule_chains = schedule.chains if schedule is not None else 1
        effective_chains = int(chains) if chains is not None else schedule_chains
        if effective_chains < 1:
            raise ValueError(f"chains must be >= 1, got {effective_chains}")
        resolved = engine
        if resolved == "auto":
            if self._context is None:
                resolved = "copy"
            elif effective_chains > 1:
                resolved = "batched"
            else:
                resolved = "incremental"
        if resolved in ("incremental", "batched") and self._context is None:
            resolved = "copy"
        self._reset_delta_cache()

        if resolved == "batched":
            return self._pack_batched(schedule, seed, initial, effective_chains)

        rng = random.Random(seed)
        names = sorted(self.blocks)
        if initial is None:
            initial = SequencePair.initial(names, rng)

        if resolved == "incremental":
            state = _InPlaceState(IncrementalPacker(self._context, initial))
            result = simulated_annealing_in_place(
                state,
                cost=self._inplace_cost,
                propose=self._propose_swap,
                snapshot=lambda s: s.packer.snapshot_pair(),
                schedule=schedule,
                rng=rng,
            )
        else:
            use_delta = self._model_reductions is not None and self._context is not None
            result = simulated_annealing(
                initial_state=initial,
                cost=self.cost_of,
                neighbor=lambda pair, r: pair.random_neighbor(r),
                schedule=schedule,
                rng=rng,
                delta_cost=self.delta_cost if use_delta else None,
            )
        packing = pack_sequence_pair(result.best_state, self.blocks)
        inside = self.inside_blocks(packing)
        return FixedOutlineResult(
            inside=inside,
            packing=packing,
            pair=result.best_state,
            cost=result.best_cost,
            annealing=result,
            engine=resolved,
        )

    def _pack_batched(
        self,
        schedule: AnnealingSchedule | None,
        seed: int,
        initial: SequencePair | None,
        chains: int,
    ) -> FixedOutlineResult:
        """Run K stacked chains and surface the winner as the result.

        Chain ``c`` consumes ``random.Random(seed + c)`` exactly as a solo
        ``pack(seed=seed + c)`` run would — including its initial-pair
        shuffles when ``initial`` is None — so every chain is bit-identical
        to the corresponding solo incremental run.
        """
        annealer = BatchedAnnealer(
            self,
            schedule=schedule,
            chains=chains,
            seed=seed,
            initial=initial,
        )
        batched = annealer.run()
        best = batched.best_chain
        result = batched.annealing_result_for(best)
        packing = pack_sequence_pair(result.best_state, self.blocks)
        inside = self.inside_blocks(packing)
        return FixedOutlineResult(
            inside=inside,
            packing=packing,
            pair=result.best_state,
            cost=result.best_cost,
            annealing=result,
            engine="batched",
            batched=batched,
        )


class _InPlaceState:
    """Mutable search state of the in-place engine.

    Bundles the :class:`IncrementalPacker` with the incremental region-time
    bookkeeping: ``base_*`` describe the last *accepted* configuration,
    ``pending_*`` the last evaluated candidate.  The candidate is promoted to
    base lazily on the next evaluation — mirroring the copy engine's
    ``_base_for`` promotion — and discarded when the move is reverted.
    """

    def __init__(self, packer: IncrementalPacker) -> None:
        self.packer = packer
        self.base_mask: np.ndarray | None = None
        self.base_times: np.ndarray | None = None
        self.pending_mask: np.ndarray | None = None
        self.pending_times: np.ndarray | None = None
        self.deltas_since_rebase = 0

    def promote_pending(self) -> None:
        if self.pending_mask is not None:
            self.base_mask = self.pending_mask
            self.base_times = self.pending_times
            self.pending_mask = None
            self.pending_times = None

    def discard_pending(self) -> None:
        self.pending_mask = None
        self.pending_times = None


class _EngineMove:
    """Adapter: a packer move applied through the annealing state."""

    __slots__ = ("inner", "kind")

    def __init__(self, inner) -> None:
        self.inner = inner
        self.kind = inner.kind

    def apply(self, state: _InPlaceState) -> None:
        self.inner.apply(state.packer)

    def revert(self, state: _InPlaceState) -> None:
        self.inner.revert(state.packer)
        state.discard_pending()
