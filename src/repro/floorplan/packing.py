"""Overlap-aware packing of a sequence pair.

Given a sequence pair and the block dimensions, the classical evaluation
computes x coordinates with a longest-path calculation over the
"left-of" constraints and y coordinates over the "below" constraints.  The
OSP twist is that abutting characters may *share* blank margins, so the edge
weight from ``a`` to ``b`` is not ``width(a)`` but ``width(a) - overlap(a, b)``
(and similarly vertically), exactly as in the 2D ILP formulation (7).

The longest paths are computed with the O(n^2) dynamic program over the pair
orderings, which is plenty for the clustered problem sizes E-BLOW produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.floorplan.sequence_pair import SequencePair
from repro.geometry import Rect

__all__ = ["Block", "PackingResult", "pack_sequence_pair", "PackingContext"]


@dataclass(frozen=True)
class Block:
    """A rectangular block to pack (a character or a cluster of characters)."""

    name: str
    width: float
    height: float
    blank_left: float = 0.0
    blank_right: float = 0.0
    blank_top: float = 0.0
    blank_bottom: float = 0.0

    def horizontal_overlap(self, other: "Block") -> float:
        """Blank shared when ``self`` abuts ``other`` on its right side."""
        return min(self.blank_right, other.blank_left)

    def vertical_overlap(self, other: "Block") -> float:
        """Blank shared when ``self`` abuts ``other`` above it."""
        return min(self.blank_top, other.blank_bottom)


@dataclass
class PackingResult:
    """Placed blocks plus the bounding-box dimensions."""

    positions: dict[str, tuple[float, float]]
    width: float
    height: float

    def rect_of(self, block: Block) -> Rect:
        """Placed footprint of a block."""
        x, y = self.positions[block.name]
        return Rect(x, y, block.width, block.height)


def pack_sequence_pair(
    pair: SequencePair, blocks: Mapping[str, Block]
) -> PackingResult:
    """Compute block positions for a sequence pair with blank sharing.

    ``blocks`` must contain every name of the pair.  The packing pushes every
    block as far down/left as its constraints allow (longest path from the
    origin), with shared blanks subtracted on every constraint edge.
    """
    names = list(pair.positive)
    pos_p = {name: i for i, name in enumerate(pair.positive)}
    pos_n = {name: i for i, name in enumerate(pair.negative)}

    # Horizontal constraint: a left-of b  <=>  a before b in both sequences.
    # Process blocks in Gamma- order; every earlier block that is also earlier
    # in Gamma+ is a predecessor.
    x: dict[str, float] = {name: 0.0 for name in names}
    order_n = list(pair.negative)
    for idx, b in enumerate(order_n):
        bb = blocks[b]
        best = 0.0
        for a in order_n[:idx]:
            if pos_p[a] < pos_p[b]:
                ab = blocks[a]
                best = max(best, x[a] + ab.width - ab.horizontal_overlap(bb))
        x[b] = best

    # Vertical constraint: a below b  <=>  a after b in Gamma+, before in Gamma-.
    y: dict[str, float] = {name: 0.0 for name in names}
    for idx, b in enumerate(order_n):
        bb = blocks[b]
        best = 0.0
        for a in order_n[:idx]:
            if pos_p[a] > pos_p[b]:
                ab = blocks[a]
                best = max(best, y[a] + ab.height - ab.vertical_overlap(bb))
        y[b] = best

    width = max((x[n] + blocks[n].width for n in names), default=0.0)
    height = max((y[n] + blocks[n].height for n in names), default=0.0)
    return PackingResult(
        positions={n: (x[n], y[n]) for n in names}, width=width, height=height
    )


class PackingContext:
    """Pre-computed data for repeatedly packing the same block set.

    The simulated-annealing loop evaluates thousands of sequence pairs over a
    fixed block set; this context pre-computes the pairwise blank-overlap
    matrices once and evaluates each packing with NumPy, which is an order of
    magnitude faster than the dictionary-based :func:`pack_sequence_pair`.
    Both paths produce identical results (verified in the test suite).
    """

    def __init__(self, blocks: Mapping[str, Block]) -> None:
        self.names = sorted(blocks)
        self.index = {name: i for i, name in enumerate(self.names)}
        self.blocks = [blocks[name] for name in self.names]
        n = len(self.names)
        self.widths = np.array([b.width for b in self.blocks], dtype=float)
        self.heights = np.array([b.height for b in self.blocks], dtype=float)
        blank_right = np.array([b.blank_right for b in self.blocks], dtype=float)
        blank_left = np.array([b.blank_left for b in self.blocks], dtype=float)
        blank_top = np.array([b.blank_top for b in self.blocks], dtype=float)
        blank_bottom = np.array([b.blank_bottom for b in self.blocks], dtype=float)
        # h_edge[a, b] = width(a) - min(blank_right(a), blank_left(b))
        self.h_edge = self.widths[:, None] - np.minimum(
            blank_right[:, None], blank_left[None, :]
        )
        self.v_edge = self.heights[:, None] - np.minimum(
            blank_top[:, None], blank_bottom[None, :]
        )
        self._n = n

    def pack(self, pair: SequencePair) -> PackingResult:
        """Pack a sequence pair over the context's block set."""
        x, y = self.pack_arrays(pair)
        n = self._n
        width = float(np.max(x + self.widths)) if n else 0.0
        height = float(np.max(y + self.heights)) if n else 0.0
        return PackingResult(
            positions={
                name: (float(x[self.index[name]]), float(y[self.index[name]]))
                for name in self.names
            },
            width=width,
            height=height,
        )

    def pack_arrays(self, pair: SequencePair) -> tuple[np.ndarray, np.ndarray]:
        """Longest-path coordinates of a sequence pair (no dict building).

        The longest-path DP walks Gamma- order; re-indexing the edge-weight
        matrices into that order once per call means every step works on
        contiguous slices (``He[:k, k]``) instead of fancy-indexed gathers,
        and the predecessor masks are plain prefix views — no per-step
        allocations besides the DP arrays themselves.
        """
        n = self._n
        result_x = np.zeros(n)
        result_y = np.zeros(n)
        if n == 0:
            return result_x, result_y
        index = self.index
        pos_p = np.empty(n, dtype=int)
        for rank, name in enumerate(pair.positive):
            pos_p[index[name]] = rank
        order = np.fromiter(
            (index[name] for name in pair.negative), dtype=int, count=n
        )
        ranks = pos_p[order]
        # Transposed so each step reads a contiguous predecessor row.
        h_edge = self.h_edge[np.ix_(order, order)].T.copy()
        v_edge = self.v_edge[np.ix_(order, order)].T.copy()

        xs = np.zeros(n)  # coordinates in Gamma- order
        ys = np.zeros(n)
        buf = np.empty(n)
        mask = np.empty(n, dtype=bool)
        maximum_reduce = np.maximum.reduce
        for k in range(1, n):
            m = mask[:k]
            np.less(ranks[:k], ranks[k], out=m)
            b = buf[:k]
            np.add(xs[:k], h_edge[k, :k], out=b)
            xs[k] = maximum_reduce(b, where=m, initial=0.0)
            np.invert(m, out=m)
            np.add(ys[:k], v_edge[k, :k], out=b)
            ys[k] = maximum_reduce(b, where=m, initial=0.0)
        result_x[order] = xs
        result_y[order] = ys
        return result_x, result_y
