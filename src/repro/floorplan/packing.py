"""Overlap-aware packing of a sequence pair.

Given a sequence pair and the block dimensions, the classical evaluation
computes x coordinates with a longest-path calculation over the
"left-of" constraints and y coordinates over the "below" constraints.  The
OSP twist is that abutting characters may *share* blank margins, so the edge
weight from ``a`` to ``b`` is not ``width(a)`` but ``width(a) - overlap(a, b)``
(and similarly vertically), exactly as in the 2D ILP formulation (7).

The longest paths are computed with the O(n^2) dynamic program over the pair
orderings, which is plenty for the clustered problem sizes E-BLOW produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.events import emit
from repro.floorplan.sequence_pair import SequencePair
from repro.geometry import Rect
from repro.obs import metrics as obs_metrics

# Shared by every incremental-cache rebase site (this packer, the
# fixed-outline region-time caches, the batched engine): rebases happen
# once per REBASE_INTERVAL moves, so the counter costs nothing per move.
_REBASES = obs_metrics.declare_counter(
    "anneal_rebases_total", "Incremental-cache rebuilds from scratch", ("scope",)
)

__all__ = [
    "Block",
    "PackingResult",
    "pack_sequence_pair",
    "PackingContext",
    "IncrementalPacker",
    "PackerMove",
    "SwapPositive",
    "SwapNegative",
    "SwapBoth",
    "Rotate",
    "ShiftNegative",
    "ShiftPositive",
    "NullMove",
]


@dataclass(frozen=True)
class Block:
    """A rectangular block to pack (a character or a cluster of characters)."""

    name: str
    width: float
    height: float
    blank_left: float = 0.0
    blank_right: float = 0.0
    blank_top: float = 0.0
    blank_bottom: float = 0.0

    def horizontal_overlap(self, other: "Block") -> float:
        """Blank shared when ``self`` abuts ``other`` on its right side."""
        return min(self.blank_right, other.blank_left)

    def vertical_overlap(self, other: "Block") -> float:
        """Blank shared when ``self`` abuts ``other`` above it."""
        return min(self.blank_top, other.blank_bottom)


@dataclass
class PackingResult:
    """Placed blocks plus the bounding-box dimensions."""

    positions: dict[str, tuple[float, float]]
    width: float
    height: float

    def rect_of(self, block: Block) -> Rect:
        """Placed footprint of a block."""
        x, y = self.positions[block.name]
        return Rect(x, y, block.width, block.height)


def pack_sequence_pair(
    pair: SequencePair, blocks: Mapping[str, Block]
) -> PackingResult:
    """Compute block positions for a sequence pair with blank sharing.

    ``blocks`` must contain every name of the pair.  The packing pushes every
    block as far down/left as its constraints allow (longest path from the
    origin), with shared blanks subtracted on every constraint edge.
    """
    names = list(pair.positive)
    pos_p = {name: i for i, name in enumerate(pair.positive)}
    pos_n = {name: i for i, name in enumerate(pair.negative)}

    # Horizontal constraint: a left-of b  <=>  a before b in both sequences.
    # Process blocks in Gamma- order; every earlier block that is also earlier
    # in Gamma+ is a predecessor.
    x: dict[str, float] = {name: 0.0 for name in names}
    order_n = list(pair.negative)
    for idx, b in enumerate(order_n):
        bb = blocks[b]
        best = 0.0
        for a in order_n[:idx]:
            if pos_p[a] < pos_p[b]:
                ab = blocks[a]
                best = max(best, x[a] + ab.width - ab.horizontal_overlap(bb))
        x[b] = best

    # Vertical constraint: a below b  <=>  a after b in Gamma+, before in Gamma-.
    y: dict[str, float] = {name: 0.0 for name in names}
    for idx, b in enumerate(order_n):
        bb = blocks[b]
        best = 0.0
        for a in order_n[:idx]:
            if pos_p[a] > pos_p[b]:
                ab = blocks[a]
                best = max(best, y[a] + ab.height - ab.vertical_overlap(bb))
        y[b] = best

    width = max((x[n] + blocks[n].width for n in names), default=0.0)
    height = max((y[n] + blocks[n].height for n in names), default=0.0)
    return PackingResult(
        positions={n: (x[n], y[n]) for n in names}, width=width, height=height
    )


class PackingContext:
    """Pre-computed data for repeatedly packing the same block set.

    The simulated-annealing loop evaluates thousands of sequence pairs over a
    fixed block set; this context pre-computes the pairwise blank-overlap
    matrices once and evaluates each packing with NumPy, which is an order of
    magnitude faster than the dictionary-based :func:`pack_sequence_pair`.
    Both paths produce identical results (verified in the test suite).
    """

    def __init__(self, blocks: Mapping[str, Block]) -> None:
        self.names = sorted(blocks)
        self.index = {name: i for i, name in enumerate(self.names)}
        self.blocks = [blocks[name] for name in self.names]
        n = len(self.names)
        self.widths = np.array([b.width for b in self.blocks], dtype=float)
        self.heights = np.array([b.height for b in self.blocks], dtype=float)
        self.blank_right = np.array([b.blank_right for b in self.blocks], dtype=float)
        self.blank_left = np.array([b.blank_left for b in self.blocks], dtype=float)
        self.blank_top = np.array([b.blank_top for b in self.blocks], dtype=float)
        self.blank_bottom = np.array([b.blank_bottom for b in self.blocks], dtype=float)
        # h_edge[a, b] = width(a) - min(blank_right(a), blank_left(b))
        self.h_edge = self.widths[:, None] - np.minimum(
            self.blank_right[:, None], self.blank_left[None, :]
        )
        self.v_edge = self.heights[:, None] - np.minimum(
            self.blank_top[:, None], self.blank_bottom[None, :]
        )
        self._n = n

    def pack(self, pair: SequencePair) -> PackingResult:
        """Pack a sequence pair over the context's block set."""
        x, y = self.pack_arrays(pair)
        n = self._n
        width = float(np.max(x + self.widths)) if n else 0.0
        height = float(np.max(y + self.heights)) if n else 0.0
        return PackingResult(
            positions={
                name: (float(x[self.index[name]]), float(y[self.index[name]]))
                for name in self.names
            },
            width=width,
            height=height,
        )

    def pack_arrays(self, pair: SequencePair) -> tuple[np.ndarray, np.ndarray]:
        """Longest-path coordinates of a sequence pair (no dict building).

        The longest-path DP walks Gamma- order; re-indexing the edge-weight
        matrices into that order once per call means every step works on
        contiguous slices (``He[:k, k]``) instead of fancy-indexed gathers,
        and the predecessor masks are plain prefix views — no per-step
        allocations besides the DP arrays themselves.
        """
        n = self._n
        result_x = np.zeros(n)
        result_y = np.zeros(n)
        if n == 0:
            return result_x, result_y
        index = self.index
        pos_p = np.empty(n, dtype=int)
        for rank, name in enumerate(pair.positive):
            pos_p[index[name]] = rank
        order = np.fromiter(
            (index[name] for name in pair.negative), dtype=int, count=n
        )
        ranks = pos_p[order]
        # Transposed so each step reads a contiguous predecessor row.
        h_edge = self.h_edge[np.ix_(order, order)].T.copy()
        v_edge = self.v_edge[np.ix_(order, order)].T.copy()

        xs = np.zeros(n)  # coordinates in Gamma- order
        ys = np.zeros(n)
        buf = np.empty(n)
        mask = np.empty(n, dtype=bool)
        maximum_reduce = np.maximum.reduce
        for k in range(1, n):
            m = mask[:k]
            np.less(ranks[:k], ranks[k], out=m)
            b = buf[:k]
            np.add(xs[:k], h_edge[k, :k], out=b)
            xs[k] = maximum_reduce(b, where=m, initial=0.0)
            np.invert(m, out=m)
            np.add(ys[:k], v_edge[k, :k], out=b)
            ys[k] = maximum_reduce(b, where=m, initial=0.0)
        result_x[order] = xs
        result_y[order] = ys
        return result_x, result_y


# --------------------------------------------------------------------------- #
# Incremental packing
# --------------------------------------------------------------------------- #


class PackerMove:
    """Base class for reversible in-place sequence-pair mutations.

    A move is applied to an :class:`IncrementalPacker`; during ``apply`` it
    stashes the undo checkpoint (the dirty coordinate suffix plus whatever
    structural bookkeeping the concrete move needs) on itself, so ``revert``
    restores the packer exactly — bit for bit — to its pre-move state.  The
    classes satisfy the annealing engine's ``Move`` protocol.
    """

    kind = "move"

    def __init__(self) -> None:
        self._checkpoint = None

    def apply(self, packer: "IncrementalPacker") -> None:
        raise NotImplementedError

    def revert(self, packer: "IncrementalPacker") -> None:
        raise NotImplementedError


class NullMove(PackerMove):
    """No-op move (proposed when the block set is too small to perturb)."""

    kind = "none"

    def apply(self, packer) -> None:  # noqa: D102 — trivially nothing
        pass

    def revert(self, packer) -> None:
        pass


class SwapPositive(PackerMove):
    """Swap the blocks at two Gamma+ rank positions (Gamma- untouched)."""

    kind = "swap_positive"

    def __init__(self, i: int, j: int) -> None:
        super().__init__()
        self.i, self.j = i, j

    def apply(self, packer: "IncrementalPacker") -> None:
        positions = packer._swap_ranks(self.i, self.j)
        self._checkpoint = packer._checkpoint(min(positions))
        packer._after_mutation(min(positions), set(positions))

    def revert(self, packer: "IncrementalPacker") -> None:
        packer._swap_ranks(self.i, self.j)
        packer._restore(self._checkpoint)


class SwapNegative(PackerMove):
    """Swap the blocks at two Gamma- positions (Gamma+ untouched)."""

    kind = "swap_negative"

    def __init__(self, i: int, j: int) -> None:
        super().__init__()
        self.i, self.j = i, j

    def apply(self, packer: "IncrementalPacker") -> None:
        packer._swap_positions(self.i, self.j)
        lo = min(self.i, self.j)
        self._checkpoint = packer._checkpoint(lo)
        packer._after_mutation(lo, {self.i, self.j})

    def revert(self, packer: "IncrementalPacker") -> None:
        packer._swap_positions(self.i, self.j)
        packer._restore(self._checkpoint)


class SwapBoth(PackerMove):
    """Swap the blocks at two Gamma+ positions in *both* sequences.

    Mirrors :meth:`SequencePair.swap_both` with the block names taken from
    Gamma+ positions ``i`` and ``j`` (exactly what ``random_neighbor`` does).
    """

    kind = "swap_both"

    def __init__(self, i: int, j: int) -> None:
        super().__init__()
        self.i, self.j = i, j

    def apply(self, packer: "IncrementalPacker") -> None:
        positions = packer._swap_ranks(self.i, self.j)
        packer._swap_positions(*positions)
        lo = min(positions)
        self._checkpoint = packer._checkpoint(lo)
        packer._after_mutation(lo, set(positions))

    def revert(self, packer: "IncrementalPacker") -> None:
        positions = packer._swap_ranks(self.i, self.j)
        packer._swap_positions(*positions)
        packer._restore(self._checkpoint)


class Rotate(PackerMove):
    """Transpose one block (width/height and the blank pairs swapped).

    The cached edge-weight row and column of the block's Gamma- position are
    updated in place from the mutated geometry — no matrix rebuild.  The
    transformation is an involution, so ``revert`` simply re-applies it.
    """

    kind = "rotate"

    def __init__(self, block_index: int) -> None:
        super().__init__()
        self.block_index = block_index

    def apply(self, packer: "IncrementalPacker") -> None:
        position = packer._rotate_block(self.block_index)
        self._checkpoint = packer._checkpoint(position)
        packer._after_mutation(position, {position})

    def revert(self, packer: "IncrementalPacker") -> None:
        packer._rotate_block(self.block_index)
        packer._restore(self._checkpoint)


class ShiftNegative(PackerMove):
    """Move the block at Gamma- position ``i`` to position ``j``."""

    kind = "shift_negative"

    def __init__(self, i: int, j: int) -> None:
        super().__init__()
        self.i, self.j = i, j

    def apply(self, packer: "IncrementalPacker") -> None:
        lo, hi = min(self.i, self.j), max(self.i, self.j)
        packer._shift_position(self.i, self.j)
        self._checkpoint = packer._checkpoint(lo)
        packer._after_mutation(lo, set(range(lo, hi + 1)))

    def revert(self, packer: "IncrementalPacker") -> None:
        packer._shift_position(self.j, self.i)
        packer._restore(self._checkpoint)


class ShiftPositive(PackerMove):
    """Move the block at Gamma+ rank ``i`` to rank ``j``."""

    kind = "shift_positive"

    def __init__(self, i: int, j: int) -> None:
        super().__init__()
        self.i, self.j = i, j

    def apply(self, packer: "IncrementalPacker") -> None:
        positions = packer._shift_rank(self.i, self.j)
        lo = min(positions)
        self._checkpoint = packer._checkpoint(lo)
        packer._after_mutation(lo, positions)

    def revert(self, packer: "IncrementalPacker") -> None:
        packer._shift_rank(self.j, self.i)
        packer._restore(self._checkpoint)


class IncrementalPacker:
    """Sequence-pair packing under in-place moves with dirty-suffix recompute.

    The copy-based evaluation (:meth:`PackingContext.pack_arrays`) pays the
    full O(n^2) longest-path DP — plus an O(n^2) edge-matrix gather — for
    *every* candidate, even though an annealing move perturbs only two
    sequence positions.  This class keeps the whole evaluation state resident
    between moves:

    * the Gamma- order, the Gamma+ ranks, and the per-block geometry arrays,
      all pre-permuted into Gamma- order;
    * the edge-weight matrices ``H``/``V`` (``H[k, p]`` = horizontal edge
      from the predecessor at Gamma- position ``p`` into position ``k``),
      maintained under moves by row/column permutation (swaps/shifts) or
      in-place row+column refresh (rotations) — never rebuilt per move;
    * the longest-path values ``xs``/``ys`` and, per position, the
      *supporting predecessor* (argmax) of each DP value.

    After a move, only positions at or after the earliest mutated Gamma-
    position can change (*dirty-suffix rule*: a DP step ``k`` only reads
    positions ``< k``).  Within the suffix, a position is re-evaluated against
    its full predecessor row only when it was structurally touched or its
    cached supporting predecessor dropped; otherwise an O(|changed|) scan of
    the changed predecessors' contributions proves its cached value stable
    (or raises it in O(1)).  All arithmetic produces the same IEEE-double
    values as the batch DP — max-folds are exact and the adds are identical —
    so the maintained coordinates are **bit-identical** to a fresh
    :meth:`PackingContext.pack` of the same state (asserted by property
    tests; the dict-based :func:`pack_sequence_pair` differs from both by
    float-association noise only).

    The hot state is mirrored in plain Python lists (scalar indexing on
    ndarrays would dominate the suffix scan); the NumPy arrays are kept in
    lockstep for the vectorized operations (inside-masks, bounding box,
    checkpoints, long predecessor rows).  Every ``rebase_interval`` applied
    moves the caches are rebuilt from scratch (mirroring
    ``RunningTimes.REBASE_INTERVAL``); because permutation and refresh
    updates are exact this is a safety net, not a correctness requirement.
    """

    REBASE_INTERVAL = 4096
    # Predecessor rows shorter than this are folded in pure Python (which
    # also yields the supporting index for free); longer rows amortize the
    # NumPy call overhead.
    _PY_ROW_LIMIT = 80

    def __init__(
        self,
        source: "PackingContext | Mapping[str, Block]",
        pair: SequencePair,
        rebase_interval: int | None = None,
    ) -> None:
        context = source if isinstance(source, PackingContext) else PackingContext(source)
        self.context = context
        self.names = context.names
        n = self._n = context._n
        if sorted(pair.positive) != self.names:
            raise ValueError("sequence pair does not match the packing context's blocks")
        self.rebase_interval = int(rebase_interval or self.REBASE_INTERVAL)
        self._applies = 0

        # Mutable per-block geometry in canonical (sorted-name) order;
        # rotations mutate these, everything else treats them as constants.
        self.widths = context.widths.copy()
        self.heights = context.heights.copy()
        self.blank_left = context.blank_left.copy()
        self.blank_right = context.blank_right.copy()
        self.blank_top = context.blank_top.copy()
        self.blank_bottom = context.blank_bottom.copy()

        index = context.index
        self.by_rank = np.fromiter(
            (index[name] for name in pair.positive), dtype=np.intp, count=n
        )
        self.order = np.fromiter(
            (index[name] for name in pair.negative), dtype=np.intp, count=n
        )
        self.rank_of = np.empty(n, dtype=np.intp)
        self.rank_of[self.by_rank] = np.arange(n, dtype=np.intp)
        self.pos_of = np.empty(n, dtype=np.intp)
        self.pos_of[self.order] = np.arange(n, dtype=np.intp)

        # DP state + scratch buffers (allocated once, reused per move).
        self.xs = np.zeros(n)
        self.ys = np.zeros(n)
        self._buf = np.empty(n)
        self._maskbuf = np.empty(n, dtype=bool)
        self._sumbuf = np.empty(n)
        self.width = 0.0
        self.height = 0.0
        self._rebuild()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return self._n

    def snapshot_pair(self) -> SequencePair:
        """The current sequence pair as an immutable :class:`SequencePair`."""
        names = self.names
        return SequencePair(
            positive=tuple(names[c] for c in self.by_rank),
            negative=tuple(names[c] for c in self.order),
        )

    def current_blocks(self) -> dict[str, Block]:
        """Current block geometry (reflecting applied rotations)."""
        return {
            name: Block(
                name=name,
                width=float(self.widths[c]),
                height=float(self.heights[c]),
                blank_left=float(self.blank_left[c]),
                blank_right=float(self.blank_right[c]),
                blank_top=float(self.blank_top[c]),
                blank_bottom=float(self.blank_bottom[c]),
            )
            for c, name in enumerate(self.names)
        }

    def coordinates(self) -> tuple[np.ndarray, np.ndarray]:
        """``(x, y)`` arrays in canonical (sorted-name) order."""
        n = self._n
        x = np.empty(n)
        y = np.empty(n)
        x[self.order] = self.xs
        y[self.order] = self.ys
        return x, y

    def pack_result(self) -> PackingResult:
        """Current packing as a :class:`PackingResult` (dict building is O(n))."""
        x, y = self.coordinates()
        return PackingResult(
            positions={
                name: (float(x[c]), float(y[c])) for c, name in enumerate(self.names)
            },
            width=self.width,
            height=self.height,
        )

    def inside_mask(self, outline_width: float, outline_height: float) -> np.ndarray:
        """Canonical-order mask of blocks entirely inside the outline.

        Element-for-element identical to evaluating the canonical coordinate
        arrays: the comparisons are computed in Gamma- order and scattered.
        """
        n = self._n
        np.add(self.xs, self.widths_o, out=self._sumbuf)
        mask_o = self._sumbuf <= outline_width + 1e-9
        np.add(self.ys, self.heights_o, out=self._sumbuf)
        mask_o &= self._sumbuf <= outline_height + 1e-9
        mask = np.empty(n, dtype=bool)
        mask[self.order] = mask_o
        return mask

    # ------------------------------------------------------------------ #
    # Structural mutations (shared by the move classes)
    # ------------------------------------------------------------------ #
    def _swap_ranks(self, i: int, j: int) -> tuple[int, int]:
        """Swap Gamma+ ranks ``i`` and ``j``; returns the Gamma- positions."""
        a, b = self.by_rank[i], self.by_rank[j]
        self.by_rank[i], self.by_rank[j] = b, a
        self.rank_of[a], self.rank_of[b] = j, i
        pa, pb = int(self.pos_of[a]), int(self.pos_of[b])
        ranks_l = self.ranks_l
        ranks_l[pa], ranks_l[pb] = ranks_l[pb], ranks_l[pa]
        self.ranks[pa], self.ranks[pb] = self.ranks[pb], self.ranks[pa]
        return pa, pb

    def _swap_positions(self, i: int, j: int) -> None:
        """Swap Gamma- positions ``i`` and ``j`` (occupants + cached rows)."""
        a, b = self.order[i], self.order[j]
        self.order[i], self.order[j] = b, a
        self.pos_of[a], self.pos_of[b] = j, i
        for arr in (
            self.ranks,
            self.widths_o,
            self.heights_o,
            self.bl_o,
            self.br_o,
            self.bt_o,
            self.bb_o,
        ):
            arr[i], arr[j] = arr[j], arr[i]
        ranks_l = self.ranks_l
        ranks_l[i], ranks_l[j] = ranks_l[j], ranks_l[i]
        swap_buf = self._sumbuf
        for matrix in (self.H, self.V):
            # Buffered row/column swaps: three memcpys beat fancy indexing.
            np.copyto(swap_buf, matrix[i])
            matrix[i] = matrix[j]
            matrix[j] = swap_buf
            np.copyto(swap_buf, matrix[:, i])
            matrix[:, i] = matrix[:, j]
            matrix[:, j] = swap_buf
        for rows in (self.H_l, self.V_l):
            rows[i], rows[j] = rows[j], rows[i]
        for row_h, row_v in zip(self.H_l, self.V_l):
            row_h[i], row_h[j] = row_h[j], row_h[i]
            row_v[i], row_v[j] = row_v[j], row_v[i]
        # Column contents only permute across rows under a position swap, so
        # the per-column upper bounds just exchange.
        colmax_x, colmax_y = self.colmax_x, self.colmax_y
        colmax_x[i], colmax_x[j] = colmax_x[j], colmax_x[i]
        colmax_y[i], colmax_y[j] = colmax_y[j], colmax_y[i]

    def _shift_window(self, i: int, j: int) -> tuple[int, int, np.ndarray]:
        lo, hi = min(i, j), max(i, j)
        if i < j:
            src = np.concatenate(
                [np.arange(i + 1, j + 1, dtype=np.intp), np.array([i], dtype=np.intp)]
            )
        else:
            src = np.concatenate(
                [np.array([i], dtype=np.intp), np.arange(j, i, dtype=np.intp)]
            )
        return lo, hi, src

    def _shift_position(self, i: int, j: int) -> None:
        """Move the Gamma- occupant at position ``i`` to position ``j``."""
        if i == j:
            return
        lo, hi, src = self._shift_window(i, j)
        window = slice(lo, hi + 1)
        for arr in (
            self.order,
            self.ranks,
            self.widths_o,
            self.heights_o,
            self.bl_o,
            self.br_o,
            self.bt_o,
            self.bb_o,
        ):
            arr[window] = arr[src]
        self.pos_of[self.order[window]] = np.arange(lo, hi + 1, dtype=np.intp)
        idx = np.arange(self._n, dtype=np.intp)
        idx[window] = src
        for matrix in (self.H, self.V):
            matrix[:, :] = matrix[np.ix_(idx, idx)]
        # Shift moves are rare (optional move types): refresh the list
        # mirrors wholesale instead of permuting them piecewise.
        self._refresh_list_mirrors()

    def _shift_rank(self, i: int, j: int) -> set[int]:
        """Move the Gamma+ occupant at rank ``i`` to rank ``j``.

        Returns the set of Gamma- positions whose rank changed.
        """
        if i == j:
            return {int(self.pos_of[self.by_rank[i]])}
        lo, hi, src = self._shift_window(i, j)
        window = slice(lo, hi + 1)
        self.by_rank[window] = self.by_rank[src]
        moved = self.by_rank[window]
        self.rank_of[moved] = np.arange(lo, hi + 1, dtype=np.intp)
        positions = self.pos_of[moved]
        self.ranks[positions] = self.rank_of[moved]
        ranks_l = self.ranks_l
        for p in positions:
            ranks_l[p] = int(self.ranks[p])
        return {int(p) for p in positions}

    def _rotate_block(self, c: int) -> int:
        """Transpose block ``c``'s geometry; refresh its cached edge row/col.

        Returns the block's Gamma- position.
        """
        w, h = self.widths[c], self.heights[c]
        self.widths[c], self.heights[c] = h, w
        bl, bb = self.blank_left[c], self.blank_bottom[c]
        self.blank_left[c], self.blank_bottom[c] = bb, bl
        br, bt = self.blank_right[c], self.blank_top[c]
        self.blank_right[c], self.blank_top[c] = bt, br
        p = int(self.pos_of[c])
        self.widths_o[p] = self.widths[c]
        self.heights_o[p] = self.heights[c]
        self.bl_o[p] = self.blank_left[c]
        self.br_o[p] = self.blank_right[c]
        self.bt_o[p] = self.blank_top[c]
        self.bb_o[p] = self.blank_bottom[c]
        # Refresh the block's row (it as successor) and column (it as
        # predecessor) from the same formula the full rebuild uses.
        H, V = self.H, self.V
        H[p, :] = self.widths_o - np.minimum(self.br_o, self.bl_o[p])
        H[:, p] = self.widths_o[p] - np.minimum(self.br_o[p], self.bl_o)
        V[p, :] = self.heights_o - np.minimum(self.bt_o, self.bb_o[p])
        V[:, p] = self.heights_o[p] - np.minimum(self.bt_o[p], self.bb_o)
        self.H_l[p] = H[p].tolist()
        self.V_l[p] = V[p].tolist()
        # tolist() keeps the mirrors plain-Python floats (ndarray scalars
        # would drag NumPy dispatch into the hot propagation loops).
        h_col = H[:, p].tolist()
        v_col = V[:, p].tolist()
        for q, row in enumerate(self.H_l):
            row[p] = h_col[q]
        for q, row in enumerate(self.V_l):
            row[p] = v_col[q]
        # Keep the column bounds valid: row p's new entries may raise any
        # column's bound; column p is recomputed exactly.
        colmax_x, colmax_y = self.colmax_x, self.colmax_y
        for q, (eh, ev) in enumerate(zip(self.H_l[p], self.V_l[p])):
            if eh > colmax_x[q]:
                colmax_x[q] = eh
            if ev > colmax_y[q]:
                colmax_y[q] = ev
        colmax_x[p] = float(H[:, p].max())
        colmax_y[p] = float(V[:, p].max())
        return p

    # ------------------------------------------------------------------ #
    # DP maintenance
    # ------------------------------------------------------------------ #
    def _refresh_list_mirrors(self) -> None:
        self.ranks_l = self.ranks.tolist()
        self.H_l = [row.tolist() for row in self.H]
        self.V_l = [row.tolist() for row in self.V]
        # Per-column upper bounds (colmax[p] >= H[k, p] for every k) feed the
        # one-compare pruning in the propagation scan.
        if self._n:
            self.colmax_x = self.H.max(axis=0).tolist()
            self.colmax_y = self.V.max(axis=0).tolist()
        else:
            self.colmax_x = []
            self.colmax_y = []

    def _rebuild(self) -> None:
        """Recompute every cache from the mutable geometry (rebase)."""
        order = self.order
        self.ranks = self.rank_of[order].copy()
        self.widths_o = self.widths[order]
        self.heights_o = self.heights[order]
        self.bl_o = self.blank_left[order]
        self.br_o = self.blank_right[order]
        self.bt_o = self.blank_top[order]
        self.bb_o = self.blank_bottom[order]
        # H[k, p] = width(p) - min(blank_right(p), blank_left(k)); same
        # element arithmetic as PackingContext.h_edge reindexed into Gamma-
        # order and transposed.
        self.H = self.widths_o[None, :] - np.minimum(
            self.br_o[None, :], self.bl_o[:, None]
        )
        self.V = self.heights_o[None, :] - np.minimum(
            self.bt_o[None, :], self.bb_o[:, None]
        )
        self._refresh_list_mirrors()
        n = self._n
        self.xs[:] = 0.0
        self.ys[:] = 0.0
        self.xs_l = [0.0] * n
        self.ys_l = [0.0] * n
        self.xarg_l = [-1] * n
        self.yarg_l = [-1] * n
        for k in range(1, n):
            self._recompute_x(k)
            self._recompute_y(k)
        self._update_bbox()

    def _recompute_x(self, k: int) -> bool:
        """Full predecessor-row DP step for x; returns whether xs[k] changed.

        Short rows fold in pure Python (same IEEE adds, same max — the fold
        order does not affect exact maxima); long rows use the same NumPy
        kernel as the batch DP.
        """
        ranks_l = self.ranks_l
        rk = ranks_l[k]
        best = 0.0
        arg = -1
        if k <= self._PY_ROW_LIMIT:
            xs_l = self.xs_l
            row = self.H_l[k]
            for p in range(k):
                if ranks_l[p] < rk:
                    cand = xs_l[p] + row[p]
                    if cand > best:
                        best = cand
                        arg = p
        else:
            m = self._maskbuf[:k]
            np.less(self.ranks[:k], self.ranks[k], out=m)
            b = self._buf[:k]
            np.add(self.xs[:k], self.H[k, :k], out=b)
            best = float(np.maximum.reduce(b, where=m, initial=0.0))
            if best > 0.0:
                candidates = np.where(m, b, -np.inf)
                arg = int(candidates.argmax())
        changed = best != self.xs_l[k]
        self.xs_l[k] = best
        self.xs[k] = best
        self.xarg_l[k] = arg
        return changed

    def _recompute_y(self, k: int) -> bool:
        ranks_l = self.ranks_l
        rk = ranks_l[k]
        best = 0.0
        arg = -1
        if k <= self._PY_ROW_LIMIT:
            ys_l = self.ys_l
            row = self.V_l[k]
            for p in range(k):
                if ranks_l[p] > rk:
                    cand = ys_l[p] + row[p]
                    if cand > best:
                        best = cand
                        arg = p
        else:
            m = self._maskbuf[:k]
            np.greater(self.ranks[:k], self.ranks[k], out=m)
            b = self._buf[:k]
            np.add(self.ys[:k], self.V[k, :k], out=b)
            best = float(np.maximum.reduce(b, where=m, initial=0.0))
            if best > 0.0:
                candidates = np.where(m, b, -np.inf)
                arg = int(candidates.argmax())
        changed = best != self.ys_l[k]
        self.ys_l[k] = best
        self.ys[k] = best
        self.yarg_l[k] = arg
        return changed

    def _after_mutation(self, dirty: int, structural: set[int]) -> None:
        """Propagate a structural change through the DP suffix."""
        self._propagate(dirty, structural)
        self._applies += 1
        if self._applies % self.rebase_interval == 0:
            self._rebuild()
            _REBASES.inc(scope="packing")
            emit("rebase", scope="packing", interval=self.rebase_interval)
        else:
            self._update_bbox()

    def _propagate(self, dirty: int, structural: set[int]) -> None:
        """Dirty-suffix recompute with changed-set pruning.

        ``structural`` positions had their rank, occupant, or edge weights
        mutated, so their contribution to any successor may have changed even
        when their own coordinate did not; they seed both changed sets.  A
        clean position pays a full predecessor-row re-evaluation only when
        its cached supporting predecessor was structurally touched or lowered
        its contribution; an O(|changed|) scan of the changed predecessors
        resolves raises in O(1).  Most positions are dismissed by a single
        compare: ``ub`` is an upper bound on any changed predecessor's
        possible contribution (its value plus its largest outgoing edge), so
        a position whose coordinate already exceeds ``ub`` — and whose
        support is untouched — provably cannot move.
        """
        from bisect import insort

        n = self._n
        start = max(dirty, 1)
        if start >= n:
            return
        xs_l, ys_l = self.xs_l, self.ys_l
        xs_np, ys_np = self.xs, self.ys
        xarg_l, yarg_l = self.xarg_l, self.yarg_l
        ranks_l = self.ranks_l
        H_l, V_l = self.H_l, self.V_l
        colmax_x, colmax_y = self.colmax_x, self.colmax_y
        changed_x = set(structural)
        changed_y = set(structural)
        list_x = sorted(changed_x)
        list_y = list(list_x)
        ub_x = max(xs_l[p] + colmax_x[p] for p in list_x)
        ub_y = max(ys_l[p] + colmax_y[p] for p in list_y)
        for k in range(start, n):
            if k in structural:
                if self._recompute_x(k):
                    changed_x.add(k)
                    insort(list_x, k)
                    bound = xs_l[k] + colmax_x[k]
                    if bound > ub_x:
                        ub_x = bound
                if self._recompute_y(k):
                    changed_y.add(k)
                    insort(list_y, k)
                    bound = ys_l[k] + colmax_y[k]
                    if bound > ub_y:
                        ub_y = bound
                continue
            # ---- x ----
            cur = xs_l[k]
            support = xarg_l[k]
            if support in changed_x and (
                support in structural
                or xs_l[support] + H_l[k][support] < cur
            ):
                # The support's rank/edges changed or its contribution
                # dropped: the max may now come from anywhere — rescan.
                if self._recompute_x(k):
                    changed_x.add(k)
                    insort(list_x, k)
                    bound = xs_l[k] + colmax_x[k]
                    if bound > ub_x:
                        ub_x = bound
            elif ub_x > cur:
                rk = ranks_l[k]
                row = H_l[k]
                best = cur
                arg = -1
                for p in list_x:
                    if p >= k:
                        break
                    if ranks_l[p] < rk:
                        cand = xs_l[p] + row[p]
                        if cand > best:
                            best = cand
                            arg = p
                if arg >= 0:
                    xs_l[k] = best
                    xarg_l[k] = arg
                    xs_np[k] = best
                    changed_x.add(k)
                    insort(list_x, k)
                    bound = best + colmax_x[k]
                    if bound > ub_x:
                        ub_x = bound
            # ---- y ----
            cur = ys_l[k]
            support = yarg_l[k]
            if support in changed_y and (
                support in structural
                or ys_l[support] + V_l[k][support] < cur
            ):
                if self._recompute_y(k):
                    changed_y.add(k)
                    insort(list_y, k)
                    bound = ys_l[k] + colmax_y[k]
                    if bound > ub_y:
                        ub_y = bound
            elif ub_y > cur:
                rk = ranks_l[k]
                row = V_l[k]
                best = cur
                arg = -1
                for p in list_y:
                    if p >= k:
                        break
                    if ranks_l[p] > rk:
                        cand = ys_l[p] + row[p]
                        if cand > best:
                            best = cand
                            arg = p
                if arg >= 0:
                    ys_l[k] = best
                    yarg_l[k] = arg
                    ys_np[k] = best
                    changed_y.add(k)
                    insort(list_y, k)
                    bound = best + colmax_y[k]
                    if bound > ub_y:
                        ub_y = bound

    def _update_bbox(self) -> None:
        if self._n == 0:
            self.width = 0.0
            self.height = 0.0
            return
        np.add(self.xs, self.widths_o, out=self._sumbuf)
        self.width = float(self._sumbuf.max())
        np.add(self.ys, self.heights_o, out=self._sumbuf)
        self.height = float(self._sumbuf.max())

    # ------------------------------------------------------------------ #
    # Undo support
    # ------------------------------------------------------------------ #
    def _checkpoint(self, dirty: int):
        """Snapshot of everything ``_propagate`` may touch at/after ``dirty``."""
        return (
            dirty,
            self.xs[dirty:].copy(),
            self.ys[dirty:].copy(),
            self.xarg_l[dirty:],
            self.yarg_l[dirty:],
            self.width,
            self.height,
        )

    def _restore(self, checkpoint) -> None:
        dirty, xs, ys, x_arg, y_arg, width, height = checkpoint
        self.xs[dirty:] = xs
        self.ys[dirty:] = ys
        self.xs_l[dirty:] = xs.tolist()
        self.ys_l[dirty:] = ys.tolist()
        self.xarg_l[dirty:] = x_arg
        self.yarg_l[dirty:] = y_arg
        self.width = width
        self.height = height
