"""A small, generic simulated-annealing engine.

Both the E-BLOW 2D packer and the [24]-style baseline floorplanner drive the
same engine; they differ only in their state, neighbour, and cost functions.
The engine uses a geometric cooling schedule with a fixed number of moves per
temperature and keeps track of the best state ever visited.

Two execution models are provided:

* :func:`simulated_annealing` — the copy-based reference engine.  Every move
  materialises a fresh candidate state (``neighbor(current, rng)``); rejected
  candidates are simply dropped.  Simple, allocation-heavy, and the
  equivalence oracle for the fast path.
* :func:`simulated_annealing_in_place` — the mutate/undo engine.  A single
  mutable state is perturbed in place through the :class:`Move` protocol
  (``propose() -> Move``, ``move.apply(state)``, ``move.revert(state)``);
  rejected moves are undone instead of re-deriving the whole state.  Combined
  with incremental cost evaluation this turns a move from O(state) into
  O(changed).  Per-move-type acceptance statistics are collected so movers
  can adapt their proposal mix.

Both engines walk the identical schedule and consume the RNG in the identical
pattern, so a mover that mirrors its copy-based ``neighbor`` produces a
bit-identical trajectory (asserted in ``tests/floorplan/``).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Generic, Protocol, TypeVar, runtime_checkable

from repro.events import emit
from repro.obs import metrics as obs_metrics

__all__ = [
    "AnnealingSchedule",
    "AnnealingResult",
    "Move",
    "MoveTypeStats",
    "simulated_annealing",
    "simulated_annealing_in_place",
]

S = TypeVar("S")
B = TypeVar("B")

# End-of-run annealing counters (repro.obs).  Deliberately *not* updated
# per move: the pre-bound instruments are cheap but the inner loops run
# hundreds of thousands of times, so the engines account one batch of
# increments per run — zero cost inside the loop, zero RNG interaction,
# bit-identical trajectories with or without a registry installed.
_ANNEAL_RUNS = obs_metrics.declare_counter(
    "anneal_runs_total", "Annealing searches completed", ("engine",)
)
_ANNEAL_MOVES = obs_metrics.declare_counter(
    "anneal_moves_total", "Annealing moves proposed (per chain)", ("engine",)
)
_ANNEAL_ACCEPTS = obs_metrics.declare_counter(
    "anneal_accepts_total", "Annealing moves accepted (per chain)", ("engine",)
)


@dataclass
class AnnealingSchedule:
    """Cooling-schedule parameters."""

    initial_temperature: float = 1.0
    final_temperature: float = 1e-3
    cooling_rate: float = 0.92
    moves_per_temperature: int = 60
    max_total_moves: int = 200_000
    # Record the cost trace every this many temperature steps (1 = every
    # step, today's behaviour).  Long schedules at ``max_total_moves`` scale
    # would otherwise hold one float per temperature per chain forever.
    trace_stride: int = 1
    # Number of lockstep chains for the batched engine (ignored by the
    # single-chain engines; an explicit ``chains=`` argument to
    # ``FixedOutlinePacker.pack`` takes precedence).
    chains: int = 1
    # Batched engine only: reset a chain to its best-known state after this
    # many consecutive temperature steps without improving its incumbent.
    # None (the default) disables restarts; the bit-identity contract vs.
    # solo runs only covers the disabled setting.
    restart_after: int | None = None

    def temperatures(self):
        """Yield the temperature ladder."""
        t = self.initial_temperature
        while t > self.final_temperature:
            yield t
            t *= self.cooling_rate


@runtime_checkable
class Move(Protocol):
    """A reversible in-place perturbation of an annealing state.

    ``apply`` mutates the state; ``revert`` must restore it exactly (the
    engine only calls ``revert`` on the move it just applied, so a move may
    stash undo data on itself during ``apply``).  ``kind`` buckets the move
    for the per-type acceptance statistics.
    """

    kind: str

    def apply(self, state) -> None: ...

    def revert(self, state) -> None: ...


@dataclass
class MoveTypeStats:
    """Acceptance statistics for one move kind."""

    proposed: int = 0
    accepted: int = 0
    improved: int = 0

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.proposed if self.proposed else 0.0


@dataclass
class AnnealingResult(Generic[S]):
    """Best state found plus search statistics."""

    best_state: S
    best_cost: float
    moves: int
    accepted: int
    cost_trace: list[float]
    move_stats: dict[str, MoveTypeStats] = field(default_factory=dict)


class _TraceSampler:
    """Shared cost-trace sampling: every ``stride``-th temperature + final."""

    def __init__(self, initial_cost: float, stride: int) -> None:
        self.trace = [initial_cost]
        self.stride = max(1, stride)
        self._steps = 0

    def step(self, current_cost: float) -> None:
        self._steps += 1
        if self._steps % self.stride == 0:
            self.trace.append(current_cost)

    def finish(self, current_cost: float) -> list[float]:
        if self._steps % self.stride != 0:
            self.trace.append(current_cost)
        return self.trace


def simulated_annealing(
    initial_state: S,
    cost: Callable[[S], float],
    neighbor: Callable[[S, random.Random], S],
    schedule: AnnealingSchedule | None = None,
    rng: random.Random | None = None,
    delta_cost: Callable[[S, S, float], float] | None = None,
) -> AnnealingResult[S]:
    """Minimize ``cost`` over states reachable through ``neighbor``.

    The initial temperature is auto-scaled to the magnitude of the initial
    cost so callers can use the default schedule regardless of cost units.

    ``delta_cost`` is the optional *delta-cost protocol*: when given, it is
    called as ``delta_cost(current, candidate, current_cost)`` instead of
    ``cost(candidate)`` for every move.  ``current`` is always the last
    accepted state (the one ``candidate`` was derived from), so an
    implementation can evaluate only the perturbed sub-problem against
    cached state instead of re-scoring from scratch.  It must return the
    same value as ``cost(candidate)`` up to floating-point noise.
    """
    schedule = schedule or AnnealingSchedule()
    rng = rng or random.Random(0)

    current = initial_state
    current_cost = cost(current)
    best = current
    best_cost = current_cost
    scale = max(abs(current_cost), 1.0)

    moves = 0
    accepted = 0
    sampler = _TraceSampler(current_cost, schedule.trace_stride)

    for temperature in schedule.temperatures():
        effective_t = temperature * scale
        for _ in range(schedule.moves_per_temperature):
            if moves >= schedule.max_total_moves:
                break
            moves += 1
            candidate = neighbor(current, rng)
            if delta_cost is not None:
                candidate_cost = delta_cost(current, candidate, current_cost)
            else:
                candidate_cost = cost(candidate)
            delta = candidate_cost - current_cost
            if delta <= 0 or rng.random() < math.exp(-delta / max(effective_t, 1e-12)):
                current = candidate
                current_cost = candidate_cost
                accepted += 1
                if current_cost < best_cost:
                    best = current
                    best_cost = current_cost
                    emit("incumbent", cost=best_cost, moves=moves)
        sampler.step(current_cost)
        emit("temperature", temperature=temperature, cost=current_cost, moves=moves)
        if moves >= schedule.max_total_moves:
            break
    _ANNEAL_RUNS.inc(engine="copy")
    _ANNEAL_MOVES.inc(moves, engine="copy")
    _ANNEAL_ACCEPTS.inc(accepted, engine="copy")
    return AnnealingResult(
        best_state=best,
        best_cost=best_cost,
        moves=moves,
        accepted=accepted,
        cost_trace=sampler.finish(current_cost),
    )


def simulated_annealing_in_place(
    state: S,
    cost: Callable[[S], float],
    propose: Callable[[S, random.Random], Move],
    snapshot: Callable[[S], B],
    schedule: AnnealingSchedule | None = None,
    rng: random.Random | None = None,
) -> AnnealingResult[B]:
    """Mutate/undo variant of :func:`simulated_annealing`.

    ``state`` is mutated in place for the whole search.  Each iteration asks
    ``propose(state, rng)`` for a :class:`Move`, applies it, evaluates
    ``cost(state)`` (which may score incrementally against caches updated by
    the move), and either keeps the mutation or calls ``move.revert(state)``.
    ``snapshot(state)`` captures an immutable copy whenever a new best state
    is found — that is the only time the full state is materialised.

    The schedule walk, acceptance rule, auto-scaling, and RNG consumption are
    identical to the copy-based engine: a proposer that draws the same random
    numbers as its ``neighbor`` counterpart yields a bit-identical trajectory.
    """
    schedule = schedule or AnnealingSchedule()
    rng = rng or random.Random(0)

    current_cost = cost(state)
    best = snapshot(state)
    best_cost = current_cost
    scale = max(abs(current_cost), 1.0)

    moves = 0
    accepted = 0
    stats: dict[str, MoveTypeStats] = {}
    sampler = _TraceSampler(current_cost, schedule.trace_stride)

    for temperature in schedule.temperatures():
        effective_t = temperature * scale
        for _ in range(schedule.moves_per_temperature):
            if moves >= schedule.max_total_moves:
                break
            moves += 1
            move = propose(state, rng)
            move.apply(state)
            candidate_cost = cost(state)
            # stats.get instead of setdefault: setdefault constructs (and
            # immediately discards) a MoveTypeStats per move, which shows up
            # in profiles of the incremental engine's hot loop.
            kind_stats = stats.get(move.kind)
            if kind_stats is None:
                kind_stats = stats[move.kind] = MoveTypeStats()
            kind_stats.proposed += 1
            delta = candidate_cost - current_cost
            if delta <= 0 or rng.random() < math.exp(-delta / max(effective_t, 1e-12)):
                if delta < 0:
                    kind_stats.improved += 1
                current_cost = candidate_cost
                accepted += 1
                kind_stats.accepted += 1
                if current_cost < best_cost:
                    best = snapshot(state)
                    best_cost = current_cost
                    emit("incumbent", cost=best_cost, moves=moves)
            else:
                move.revert(state)
        sampler.step(current_cost)
        emit("temperature", temperature=temperature, cost=current_cost, moves=moves)
        if moves >= schedule.max_total_moves:
            break
    _ANNEAL_RUNS.inc(engine="incremental")
    _ANNEAL_MOVES.inc(moves, engine="incremental")
    _ANNEAL_ACCEPTS.inc(accepted, engine="incremental")
    return AnnealingResult(
        best_state=best,
        best_cost=best_cost,
        moves=moves,
        accepted=accepted,
        cost_trace=sampler.finish(current_cost),
        move_stats=stats,
    )
