"""A small, generic simulated-annealing engine.

Both the E-BLOW 2D packer and the [24]-style baseline floorplanner drive the
same engine; they differ only in their state, neighbour, and cost functions.
The engine uses a geometric cooling schedule with a fixed number of moves per
temperature and keeps track of the best state ever visited.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Generic, TypeVar

__all__ = ["AnnealingSchedule", "AnnealingResult", "simulated_annealing"]

S = TypeVar("S")


@dataclass
class AnnealingSchedule:
    """Cooling-schedule parameters."""

    initial_temperature: float = 1.0
    final_temperature: float = 1e-3
    cooling_rate: float = 0.92
    moves_per_temperature: int = 60
    max_total_moves: int = 200_000

    def temperatures(self):
        """Yield the temperature ladder."""
        t = self.initial_temperature
        while t > self.final_temperature:
            yield t
            t *= self.cooling_rate


@dataclass
class AnnealingResult(Generic[S]):
    """Best state found plus search statistics."""

    best_state: S
    best_cost: float
    moves: int
    accepted: int
    cost_trace: list[float]


def simulated_annealing(
    initial_state: S,
    cost: Callable[[S], float],
    neighbor: Callable[[S, random.Random], S],
    schedule: AnnealingSchedule | None = None,
    rng: random.Random | None = None,
    delta_cost: Callable[[S, S, float], float] | None = None,
) -> AnnealingResult[S]:
    """Minimize ``cost`` over states reachable through ``neighbor``.

    The initial temperature is auto-scaled to the magnitude of the initial
    cost so callers can use the default schedule regardless of cost units.

    ``delta_cost`` is the optional *delta-cost protocol*: when given, it is
    called as ``delta_cost(current, candidate, current_cost)`` instead of
    ``cost(candidate)`` for every move.  ``current`` is always the last
    accepted state (the one ``candidate`` was derived from), so an
    implementation can evaluate only the perturbed sub-problem against
    cached state instead of re-scoring from scratch.  It must return the
    same value as ``cost(candidate)`` up to floating-point noise.
    """
    schedule = schedule or AnnealingSchedule()
    rng = rng or random.Random(0)

    current = initial_state
    current_cost = cost(current)
    best = current
    best_cost = current_cost
    scale = max(abs(current_cost), 1.0)

    moves = 0
    accepted = 0
    trace = [current_cost]

    for temperature in schedule.temperatures():
        effective_t = temperature * scale
        for _ in range(schedule.moves_per_temperature):
            if moves >= schedule.max_total_moves:
                break
            moves += 1
            candidate = neighbor(current, rng)
            if delta_cost is not None:
                candidate_cost = delta_cost(current, candidate, current_cost)
            else:
                candidate_cost = cost(candidate)
            delta = candidate_cost - current_cost
            if delta <= 0 or rng.random() < math.exp(-delta / max(effective_t, 1e-12)):
                current = candidate
                current_cost = candidate_cost
                accepted += 1
                if current_cost < best_cost:
                    best = current
                    best_cost = current_cost
        trace.append(current_cost)
        if moves >= schedule.max_total_moves:
            break
    return AnnealingResult(
        best_state=best,
        best_cost=best_cost,
        moves=moves,
        accepted=accepted,
        cost_trace=trace,
    )
