"""Bounded Subset Sum → 1DOSP reduction (Lemma 2 / Fig. 3 of the paper).

Given a BSS instance with numbers ``x_1 ... x_n`` and target ``s``, the
reduction builds a single-row 1DOSP instance with stencil length ``M + s``
(``M = max x_i``):

* one character ``c_i`` per number, of width ``M`` with symmetric blanks
  ``M - x_i`` and VSB writing time ``x_i``,
* one anchor character ``c_0`` of width ``M`` with blanks ``M - min x_i``
  and VSB writing time ``sum x_i`` (so any sensible plan selects it),
* CP writing times of 0 and a single region with one occurrence each.

By Lemma 1, selecting ``c_0`` plus the characters of a subset ``S'`` yields
a minimum packing length of ``M + sum(S')``; the packing fits the stencil
with total writing time below ``sum x_i`` iff ``S'`` sums to exactly ``s``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.model import Character, OSPInstance, Region, StencilSpec
from repro.nphard.bss import BSSInstance

__all__ = ["OSPReduction", "bss_to_osp", "minimum_packing_length"]


@dataclass(frozen=True)
class OSPReduction:
    """The constructed 1DOSP instance plus decoding information."""

    instance: OSPInstance
    anchor_name: str
    number_of: dict[str, int]  # character name -> index into the BSS numbers


def minimum_packing_length(widths_and_blanks: list[tuple[float, float]]) -> float:
    """Minimum single-row packing length under symmetric blanks (Lemma 1).

    ``widths_and_blanks`` holds ``(width, symmetric_blank)`` pairs; the
    result is ``sum(w_i - s_i) + max(s_i)`` (0 for an empty set).
    """
    if not widths_and_blanks:
        return 0.0
    return sum(w - s for w, s in widths_and_blanks) + max(s for _, s in widths_and_blanks)


def bss_to_osp(bss: BSSInstance) -> OSPReduction:
    """Construct the 1DOSP instance of Lemma 2 for a BSS instance."""
    if not bss.numbers:
        raise ValidationError("the BSS instance must contain at least one number")
    if not bss.bounded:
        raise ValidationError(
            "the reduction requires the bounded condition 2*x_i > max(x)"
        )
    largest = max(bss.numbers)
    smallest = min(bss.numbers)
    total = sum(bss.numbers)

    characters = []
    number_of: dict[str, int] = {}
    anchor = Character(
        name="c0",
        width=float(largest),
        height=1.0,
        blank_left=float(largest - smallest),
        blank_right=float(largest - smallest),
        vsb_shots=float(total),
        cp_shots=0.0,
        repeats=(1.0,),
    )
    characters.append(anchor)
    for i, x in enumerate(bss.numbers):
        name = f"c{i + 1}"
        number_of[name] = i
        characters.append(
            Character(
                name=name,
                width=float(largest),
                height=1.0,
                blank_left=float(largest - x),
                blank_right=float(largest - x),
                vsb_shots=float(x),
                cp_shots=0.0,
                repeats=(1.0,),
            )
        )

    stencil = StencilSpec(width=float(largest + bss.target), height=1.0, rows=1)
    instance = OSPInstance(
        name=f"bss-to-osp-{len(bss.numbers)}",
        characters=tuple(characters),
        regions=(Region("w1", 0),),
        stencil=stencil,
        kind="1D",
        metadata={"reduction": "bss-to-1dosp", "target": bss.target},
    )
    return OSPReduction(instance=instance, anchor_name="c0", number_of=number_of)
