"""NP-hardness constructions of Section 2.2 and the Appendix."""

from repro.nphard.bss import BSSInstance, is_bounded, solve_subset_sum
from repro.nphard.bss_to_osp import OSPReduction, bss_to_osp, minimum_packing_length
from repro.nphard.sat_to_bss import (
    Clause,
    SatInstance,
    decode_assignment,
    evaluate_sat,
    sat_to_bss,
)

__all__ = [
    "BSSInstance",
    "is_bounded",
    "solve_subset_sum",
    "Clause",
    "SatInstance",
    "sat_to_bss",
    "decode_assignment",
    "evaluate_sat",
    "OSPReduction",
    "bss_to_osp",
    "minimum_packing_length",
]
