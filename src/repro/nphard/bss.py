"""Bounded Subset Sum (BSS) — the intermediate problem of the NP-hardness proof.

Problem 2 of the paper: given numbers ``x_1 ... x_n`` with
``2 * x_i > max_j x_j`` for every ``i``, decide whether some subset sums to
``s``.  The library implements

* :func:`is_bounded` — the boundedness condition,
* :func:`solve_subset_sum` — an exact pseudo-polynomial dynamic program that
  returns a witness subset (used to verify the reductions in tests and
  examples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ValidationError

__all__ = ["BSSInstance", "is_bounded", "solve_subset_sum"]


@dataclass(frozen=True)
class BSSInstance:
    """A Bounded Subset Sum instance."""

    numbers: tuple[int, ...]
    target: int

    def __post_init__(self) -> None:
        if any(x <= 0 for x in self.numbers):
            raise ValidationError("BSS numbers must be positive integers")
        if self.target < 0:
            raise ValidationError("BSS target must be non-negative")

    @property
    def bounded(self) -> bool:
        """Whether the instance satisfies the 2*x_i > max constraint."""
        return is_bounded(self.numbers)


def is_bounded(numbers: Sequence[int]) -> bool:
    """Check the BSS boundedness condition ``2 * x_i > max(x)`` for all i."""
    if not numbers:
        return True
    largest = max(numbers)
    return all(2 * x > largest for x in numbers)


def solve_subset_sum(numbers: Sequence[int], target: int) -> list[int] | None:
    """Exact subset-sum: return indices of a subset summing to ``target``.

    Two exact strategies are used depending on the instance shape:

    * a classic O(n * target) dynamic program when the target is small, and
    * meet-in-the-middle (O(2^(n/2)) sums) when the target is huge — which is
      exactly the situation the 3SAT→BSS reduction produces, where the
      numbers have many decimal digits but there are only a few of them.

    Returns ``None`` when no subset exists.  Intended for the small instances
    of the NP-hardness constructions, not as a production solver.
    """
    if any(x <= 0 for x in numbers):
        raise ValidationError("subset-sum numbers must be positive")
    if target < 0:
        return None
    if target == 0:
        return []
    if target <= 2_000_000:
        return _subset_sum_dp(list(numbers), target)
    return _subset_sum_meet_in_the_middle(list(numbers), target)


def _subset_sum_dp(numbers: list[int], target: int) -> list[int] | None:
    """Pseudo-polynomial DP; ``reachable[t]`` stores the last index used."""
    reachable: list[int | None] = [None] * (target + 1)
    reachable[0] = -1
    for idx, x in enumerate(numbers):
        # Iterate downwards so each number is used at most once.
        for t in range(target, x - 1, -1):
            if reachable[t] is None and reachable[t - x] is not None and reachable[t - x] != idx:
                reachable[t] = idx
    if reachable[target] is None:
        return None
    subset = []
    t = target
    while t > 0:
        idx = reachable[t]
        assert idx is not None and idx >= 0
        subset.append(idx)
        t -= numbers[idx]
    return sorted(subset)


def _subset_sum_meet_in_the_middle(numbers: list[int], target: int) -> list[int] | None:
    """Split the numbers in two halves and match partial sums."""
    half = len(numbers) // 2
    left, right = numbers[:half], numbers[half:]

    def all_sums(values: list[int], offset: int) -> dict[int, list[int]]:
        sums: dict[int, list[int]] = {0: []}
        for position, value in enumerate(values):
            additions = {}
            for total, subset in sums.items():
                candidate = total + value
                if candidate <= target and candidate not in sums and candidate not in additions:
                    additions[candidate] = subset + [offset + position]
            sums.update(additions)
        return sums

    left_sums = all_sums(left, 0)
    right_sums = all_sums(right, half)
    for total, subset in left_sums.items():
        complement = right_sums.get(target - total)
        if complement is not None:
            return sorted(subset + complement)
    return None
