"""3SAT → Bounded Subset Sum reduction (Appendix / Theorem 1 of the paper).

For a 3SAT formula with ``n`` variables and ``m`` clauses the reduction
builds ``2n + 3m`` integers of ``n + 2m + 1`` decimal digits:

* two numbers ``t_i`` / ``f_i`` per variable (true / false assignment),
* three numbers ``c_j1, c_j2, c_j3`` per clause (slack that tops the clause
  digit up to 4),
* a target whose variable digits are 1, clause digits are 4, and slack
  digits are 1, plus a leading digit equal to ``n + m``.

The digit construction guarantees no carries, so the subset-sum equalities
decode directly into a satisfying assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ValidationError
from repro.nphard.bss import BSSInstance

__all__ = ["Clause", "SatInstance", "sat_to_bss", "decode_assignment", "evaluate_sat"]


@dataclass(frozen=True)
class Clause:
    """A 3SAT clause: up to three literals, each a (variable, polarity) pair."""

    literals: tuple[tuple[int, bool], ...]

    def __post_init__(self) -> None:
        if not 1 <= len(self.literals) <= 3:
            raise ValidationError("a clause must contain between 1 and 3 literals")
        variables = [v for v, _ in self.literals]
        if len(set(variables)) != len(variables):
            raise ValidationError(
                "a clause must not repeat a variable (tautologies are excluded)"
            )


@dataclass(frozen=True)
class SatInstance:
    """A 3SAT instance over variables ``0 .. num_variables - 1``."""

    num_variables: int
    clauses: tuple[Clause, ...]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            for variable, _ in clause.literals:
                if not 0 <= variable < self.num_variables:
                    raise ValidationError(f"clause references unknown variable {variable}")


def evaluate_sat(instance: SatInstance, assignment: Sequence[bool]) -> bool:
    """Whether ``assignment`` satisfies every clause."""
    if len(assignment) != instance.num_variables:
        raise ValidationError("assignment length must equal the number of variables")
    for clause in instance.clauses:
        if not any(assignment[v] == polarity for v, polarity in clause.literals):
            return False
    return True


def sat_to_bss(instance: SatInstance) -> tuple[BSSInstance, dict]:
    """Build the BSS instance for a 3SAT formula.

    Returns ``(bss, index)`` where ``index`` maps each generated number back
    to its meaning: ``index["t"][i]`` / ``index["f"][i]`` are positions of the
    variable numbers, ``index["c"][(j, k)]`` of the clause-slack numbers.
    """
    n = instance.num_variables
    m = len(instance.clauses)
    digits = n + 2 * m + 1

    def make_number(variable_digit: int | None, clause_digits: dict[int, int], slack_digit: int | None) -> int:
        # Digit layout (most significant first):
        #   [leading 1][n variable digits][m clause digits][m slack digits]
        value = 10 ** (digits - 1)
        if variable_digit is not None:
            value += 10 ** (digits - 2 - variable_digit)
        for clause_index, digit in clause_digits.items():
            value += digit * 10 ** (m - 1 - clause_index + m)
        if slack_digit is not None:
            value += 10 ** (m - 1 - slack_digit)
        return value

    numbers: list[int] = []
    index = {"t": {}, "f": {}, "c": {}}
    for i in range(n):
        positive_clauses = {
            j: 1
            for j, clause in enumerate(instance.clauses)
            if (i, True) in clause.literals
        }
        negative_clauses = {
            j: 1
            for j, clause in enumerate(instance.clauses)
            if (i, False) in clause.literals
        }
        index["t"][i] = len(numbers)
        numbers.append(make_number(i, positive_clauses, None))
        index["f"][i] = len(numbers)
        numbers.append(make_number(i, negative_clauses, None))
    for j in range(m):
        for k in (1, 2, 3):
            index["c"][(j, k)] = len(numbers)
            numbers.append(make_number(None, {j: k}, j))

    target = (n + m) * 10 ** (digits - 1)
    for i in range(n):
        target += 10 ** (digits - 2 - i)
    for j in range(m):
        target += 4 * 10 ** (m - 1 - j + m)
        target += 10 ** (m - 1 - j)

    return BSSInstance(numbers=tuple(numbers), target=target), index


def decode_assignment(
    instance: SatInstance, index: dict, subset: Sequence[int]
) -> list[bool]:
    """Decode a BSS witness subset back into a 3SAT assignment."""
    chosen = set(subset)
    assignment = []
    for i in range(instance.num_variables):
        if index["t"][i] in chosen:
            assignment.append(True)
        elif index["f"][i] in chosen:
            assignment.append(False)
        else:
            raise ValidationError(
                f"subset selects neither t_{i} nor f_{i}; it is not a valid witness"
            )
    return assignment
