"""The streaming plan-event protocol.

Planners report progress as a stream of :class:`PlanEvent` records — LP
solves, rounding iterations, annealing temperature steps, incumbent
improvements, cache rebases — through a process-local emitter.  Consumers
install a sink with :func:`emitting`; instrumented code calls :func:`emit`,
which is a no-op (one attribute lookup) when nobody is listening, so the
solver hot paths pay nothing in normal batch runs.

The protocol is deliberately one-way and side-effect free: emitting never
touches the planner's RNG or state, so an instrumented run is bit-identical
to an uninstrumented one.  Sinks that raise are dropped for the remainder of
the run rather than poisoning the planning call.

This module lives outside :mod:`repro.api` so that low-level modules
(``repro.floorplan``, ``repro.core``) can import it without creating an
import cycle; :mod:`repro.api` re-exports the public names.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

__all__ = [
    "EVENT_TYPES",
    "PlanEvent",
    "EventSink",
    "emit",
    "emitting",
    "events_enabled",
    "guarded_sink",
    "timed_stage",
]

#: The event vocabulary.  ``payload`` keys are per-type conventions, not a
#: schema — consumers must tolerate missing keys and unknown types.
#:
#: ==============  ============================================================
#: type            meaning / typical payload
#: ==============  ============================================================
#: ``started``     a planning run began — ``planner``, ``case``
#: ``stage``       a pipeline stage began — ``name`` (e.g. ``"annealing"``)
#: ``stage_done``  a pipeline stage finished — ``name``, ``seconds``
#: ``lp_solve``    one LP relaxation solved — ``seconds``, ``warm``,
#:                 ``unsolved``
#: ``iteration``   one successive-rounding iteration — ``iteration``,
#:                 ``assigned``, ``unsolved``
#: ``temperature`` one annealing temperature step — ``temperature``, ``cost``,
#:                 ``moves``
#: ``incumbent``   a new best solution — ``cost``, ``moves``
#: ``rebase``      an incremental cache was rebuilt from scratch — ``scope``
#: ``span``        a timed trace span closed — ``name``, ``span_id``,
#:                 ``parent_id``, ``seconds``, ``pid`` (see
#:                 :mod:`repro.obs.tracing`)
#: ``heartbeat``   liveness beacon of a leased pool job — ``job_id``,
#:                 ``label``, ``worker_pid`` (emitted by the worker's
#:                 heartbeat thread, consumed by the supervisor's lease
#:                 table; see :mod:`repro.runtime.supervision`)
#: ``finished``    the run ended — ``status``, ``writing_time``
#: ==============  ============================================================
EVENT_TYPES = (
    "started",
    "stage",
    "stage_done",
    "lp_solve",
    "iteration",
    "temperature",
    "incumbent",
    "rebase",
    "span",
    "heartbeat",
    "finished",
)


@dataclass(frozen=True)
class PlanEvent:
    """One progress record of a planning run.

    ``seq`` numbers events within one :func:`emitting` scope (1-based);
    ``elapsed`` is seconds since the sink was installed.  ``payload`` carries
    the type-specific details and is always JSON-able.
    """

    type: str
    seq: int = 0
    elapsed: float = 0.0
    payload: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "type": self.type,
            "seq": self.seq,
            "elapsed": self.elapsed,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PlanEvent":
        return cls(
            type=data["type"],
            seq=int(data.get("seq", 0)),
            elapsed=float(data.get("elapsed", 0.0)),
            payload=dict(data.get("payload", {})),
        )

    def describe(self) -> str:
        """One-line human rendering (the CLI's ``--progress`` format)."""
        detail = " ".join(f"{k}={_fmt(v)}" for k, v in self.payload.items())
        return f"[{self.elapsed:8.3f}s] {self.type:<12} {detail}".rstrip()


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


EventSink = Callable[[PlanEvent], None]


class _EmitterState(threading.local):
    def __init__(self) -> None:
        self.scopes: list["_Scope"] = []


class _Scope:
    __slots__ = ("sink", "seq", "start", "broken")

    def __init__(self, sink: EventSink) -> None:
        self.sink = sink
        self.seq = 0
        self.start = time.perf_counter()
        self.broken = False


_STATE = _EmitterState()


def events_enabled() -> bool:
    """Whether a sink is currently installed in this thread."""
    return bool(_STATE.scopes)


def emit(type: str, **payload) -> None:
    """Send one event to every installed sink (no-op when none is)."""
    scopes = _STATE.scopes
    if not scopes:
        return
    now = time.perf_counter()
    for scope in scopes:
        if scope.broken:
            continue
        scope.seq += 1
        event = PlanEvent(
            type=type, seq=scope.seq, elapsed=now - scope.start, payload=payload
        )
        try:
            scope.sink(event)
        except Exception as exc:  # noqa: BLE001 — a broken sink must not kill the run
            scope.broken = True
            import warnings

            warnings.warn(
                f"event sink {scope.sink!r} raised {exc!r} and was dropped "
                "for the remainder of the run",
                RuntimeWarning,
                stacklevel=2,
            )


@contextmanager
def timed_stage(name: str, seconds_by_stage: dict, **payload) -> Iterator[None]:
    """Bracket one pipeline stage with ``stage`` / ``stage_done`` events.

    Emits ``stage`` (with ``payload``) on entry; on exit — including error
    exits — records the stage's wall-clock seconds into
    ``seconds_by_stage[name]`` (rounded to µs, the planners' stats
    precision) and emits ``stage_done`` with the exact value.  This is the
    single implementation behind every planner's ``stats["stage_seconds"]``
    breakdown, so the payload shape cannot drift between flows.
    """
    emit("stage", name=name, **payload)
    stage_span = None
    if _STATE.scopes:
        # Lazy import: repro.obs.tracing imports this module, so the span
        # dependency may only materialise at call time (and only when a sink
        # is installed — unobserved runs never touch repro.obs).
        from repro.obs.tracing import span

        stage_span = span(name, **payload)
        stage_span.__enter__()
    begin = time.perf_counter()
    try:
        yield
    finally:
        seconds = time.perf_counter() - begin
        seconds_by_stage[name] = round(seconds, 6)
        if stage_span is not None:
            stage_span.__exit__(None, None, None)
        emit("stage_done", name=name, seconds=seconds)


def guarded_sink(sink: EventSink | None) -> EventSink | None:
    """Wrap a user callback so its first exception drops it permanently.

    Mirrors the scope-level ``broken`` rule for composite sinks: when a
    consumer bundles internal bookkeeping with a user callback in one sink,
    the callback half must fail independently — wrap it with this and the
    bookkeeping keeps receiving events after the callback breaks.  The drop
    is announced once through :func:`warnings.warn` (with the sink's
    exception chained into the message) so a broken observer is diagnosable
    instead of silently invisible.
    Returns ``None`` unchanged so callers can pass optional callbacks through.
    """
    if sink is None:
        return None
    broken = False

    def _guarded(event: PlanEvent) -> None:
        nonlocal broken
        if broken:
            return
        try:
            sink(event)
        except Exception as exc:  # noqa: BLE001 — drop the broken callback only
            broken = True
            import warnings

            warnings.warn(
                f"event sink {sink!r} raised {exc!r} and was dropped for the "
                "remainder of the run",
                RuntimeWarning,
                stacklevel=2,
            )

    return _guarded


@contextmanager
def emitting(sink: EventSink) -> Iterator[None]:
    """Install ``sink`` as an event consumer for the duration of the block.

    Scopes nest: every active sink receives every event, each with its own
    ``seq`` / ``elapsed`` frame, so a façade can collect events while also
    forwarding them to a user callback installed one level up.
    """
    scope = _Scope(sink)
    _STATE.scopes.append(scope)
    try:
        yield
    finally:
        _STATE.scopes.remove(scope)
