"""Comparison harness: run several planners over a list of benchmark cases.

This is the engine behind the Table 3 / Table 4 / Table 5 reproductions — a
thin client of the unified planning API: planner specs build through the
shared :mod:`repro.api.registry` handles (declared capabilities + option
schemas), and pooled grids execute through the batch runtime's single
execution path.  Results are grouped per case so the reporting module can
lay them out in the paper's row format.

Planners may still be supplied as bare factories (legacy, serial-only); the
spec form (:class:`~repro.runtime.jobs.PlannerSpec` or registry-name
strings) is required for pooled execution and validated against the
planner's declared option schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.evaluation.metrics import AlgorithmResult, result_from_plan
from repro.model import OSPInstance
from repro.workloads import build_instance

__all__ = ["ComparisonRow", "Comparison", "run_comparison"]

PlannerFactory = Callable[[], object]


@dataclass
class ComparisonRow:
    """All algorithm results for one benchmark case."""

    case: str
    instance_summary: dict
    results: dict[str, AlgorithmResult] = field(default_factory=dict)


@dataclass
class Comparison:
    """Results of running a set of algorithms over a set of cases."""

    rows: list[ComparisonRow] = field(default_factory=list)

    def algorithms(self) -> list[str]:
        """Algorithm names, preserving first-appearance order."""
        seen: list[str] = []
        for row in self.rows:
            for name in row.results:
                if name not in seen:
                    seen.append(name)
        return seen

    def averages(self) -> dict[str, dict[str, float]]:
        """Per-algorithm averages of writing time, char count, and runtime."""
        out: dict[str, dict[str, float]] = {}
        for name in self.algorithms():
            results = [row.results[name] for row in self.rows if name in row.results]
            if not results:
                continue
            count = len(results)
            out[name] = {
                "writing_time": sum(r.writing_time for r in results) / count,
                "num_selected": sum(r.num_selected for r in results) / count,
                "runtime_seconds": sum(r.runtime_seconds for r in results) / count,
            }
        return out

    def ratios(self, reference: str) -> dict[str, dict[str, float]]:
        """Averages normalised to the reference algorithm (the paper's Ratio row)."""
        averages = self.averages()
        if reference not in averages:
            return {}
        ref = averages[reference]
        return {
            name: {
                metric: (values[metric] / ref[metric] if ref[metric] else float("nan"))
                for metric in values
            }
            for name, values in averages.items()
        }

    def to_dict(self) -> dict:
        return {
            "rows": [
                {
                    "case": row.case,
                    "instance": row.instance_summary,
                    "results": {k: v.to_dict() for k, v in row.results.items()},
                }
                for row in self.rows
            ]
        }


def run_comparison(
    cases: Sequence[str] | Sequence[OSPInstance],
    planners: Mapping[str, PlannerFactory],
    scale: float = 1.0,
    jobs: int = 1,
    store=None,
    telemetry=None,
    timeout: float | None = None,
) -> Comparison:
    """Run every planner on every case.

    ``cases`` may contain benchmark-case names (resolved through
    :func:`repro.workloads.build_instance` with ``scale``) or pre-built
    :class:`OSPInstance` objects.

    ``planners`` values may be plain factories (legacy, serial-only) or
    :class:`repro.runtime.PlannerSpec` / registry-name strings.  With
    ``jobs > 1`` — or a result ``store`` / ``telemetry`` manifest — the grid
    executes through the batch runtime (:mod:`repro.runtime`), which requires
    the spec form.  Plans are identical to serial runs provided the planner
    configs are load-independent: every config here is, except E-BLOW-1's
    fast-convergence ILP wall-clock cap — pass the ``deterministic`` spec
    option to drop it (as ``eblow batch`` does by default) when bit-identical
    results matter more than the paper's capped-solver configuration.
    """
    if jobs > 1 or store is not None or telemetry is not None:
        return _run_comparison_pooled(
            cases, planners, scale=scale, jobs=jobs, store=store,
            telemetry=telemetry, timeout=timeout,
        )
    from repro.runtime.jobs import summarize_instance

    comparison = Comparison()
    for case in cases:
        instance = case if isinstance(case, OSPInstance) else build_instance(case, scale)
        row = ComparisonRow(case=instance.name, instance_summary=summarize_instance(instance))
        for name, factory in planners.items():
            planner = _build_planner(factory, instance.kind)
            plan = planner.plan(instance)
            row.results[name] = result_from_plan(plan, algorithm=name, case=instance.name)
        comparison.rows.append(row)
    return comparison


def _build_planner(factory, kind: str):
    """Support both legacy factories and runtime planner specs."""
    from repro.runtime.jobs import PlannerSpec

    if isinstance(factory, PlannerSpec):
        return factory.build(kind)
    if isinstance(factory, str):
        return PlannerSpec(factory).build(kind)
    return factory()


def _run_comparison_pooled(
    cases, planners, scale, jobs, store, telemetry, timeout
) -> Comparison:
    from repro.runtime import grid_jobs, run_jobs

    grid = grid_jobs(cases, planners, scale=scale, timeout=timeout)
    results = run_jobs(grid, max_workers=max(1, jobs), store=store, telemetry=telemetry)

    comparison = Comparison()
    row_by_case: dict[str, ComparisonRow] = {}
    for result in results:
        if not result.ok:
            raise RuntimeError(
                f"planner {result.label!r} failed on case {result.case!r} "
                f"({result.status}): {result.error}"
            )
        row = row_by_case.get(result.case)
        if row is None:
            row = ComparisonRow(case=result.case, instance_summary=dict(result.instance_summary))
            row_by_case[result.case] = row
            comparison.rows.append(row)
        row.results[result.label] = result.to_algorithm_result()
    return comparison
