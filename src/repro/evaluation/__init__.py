"""Evaluation and reporting: comparison harness and paper-style tables."""

from repro.evaluation.compare import Comparison, ComparisonRow, run_comparison
from repro.evaluation.metrics import AlgorithmResult, result_from_plan
from repro.evaluation.tables import format_comparison_table

__all__ = [
    "AlgorithmResult",
    "result_from_plan",
    "Comparison",
    "ComparisonRow",
    "run_comparison",
    "format_comparison_table",
]
