"""Result records for algorithm comparisons.

Each planner run on a benchmark case is condensed into an
:class:`AlgorithmResult` holding the three columns the paper reports for
every algorithm: writing time ``T``, the number of characters on the final
stencil ``char#``, and the runtime ``CPU(s)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.model import OSPInstance, StencilPlan
from repro.model.writing_time import evaluate_plan

__all__ = ["AlgorithmResult", "result_from_plan"]


@dataclass
class AlgorithmResult:
    """One (algorithm, benchmark case) measurement."""

    algorithm: str
    case: str
    writing_time: float
    num_selected: int
    runtime_seconds: float
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "case": self.case,
            "writing_time": self.writing_time,
            "num_selected": self.num_selected,
            "runtime_seconds": self.runtime_seconds,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "AlgorithmResult":
        return cls(
            algorithm=data["algorithm"],
            case=data["case"],
            writing_time=data["writing_time"],
            num_selected=data["num_selected"],
            runtime_seconds=data["runtime_seconds"],
            extra=dict(data.get("extra", {})),
        )


def result_from_plan(
    plan: StencilPlan, algorithm: str | None = None, case: str | None = None
) -> AlgorithmResult:
    """Condense a plan into an :class:`AlgorithmResult`."""
    instance: OSPInstance = plan.instance
    report = evaluate_plan(plan)
    return AlgorithmResult(
        algorithm=algorithm or str(plan.stats.get("algorithm", "unknown")),
        case=case or instance.name,
        writing_time=report.total,
        num_selected=report.num_selected,
        runtime_seconds=float(plan.stats.get("runtime_seconds", 0.0)),
        extra={
            k: v
            for k, v in plan.stats.items()
            if k
            in (
                "lp_iterations",
                "lp_solve_seconds",
                "stage_seconds",
                "lp_warm_hinted",
                "post_swaps",
                "post_insertions",
                "num_clusters",
                "annealing_moves",
                "annealing_engine",
                "optimal",
                "ilp_binary_variables",
            )
        },
    )
