"""Text rendering of the paper's figures (convergence traces, histograms, bars).

The reproduction is terminal-first: instead of matplotlib plots, the figure
data is rendered as compact ASCII charts that can be pasted into
``EXPERIMENTS.md`` or read straight off a CI log.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_series", "render_histogram", "render_grouped_bars"]


def _scaled(value: float, maximum: float, width: int) -> int:
    if maximum <= 0:
        return 0
    return max(0, min(width, int(round(value / maximum * width))))


def render_series(
    series: Mapping[str, Sequence[float]],
    title: str = "",
    width: int = 50,
) -> str:
    """Render one horizontal bar per data point, grouped by series (Fig. 5 style)."""
    lines = []
    if title:
        lines.append(title)
    maximum = max(
        (max(values) for values in series.values() if len(values)), default=0.0
    )
    for name, values in series.items():
        lines.append(f"{name}:")
        for index, value in enumerate(values):
            bar = "#" * _scaled(value, maximum, width)
            lines.append(f"  iter {index + 1:>3}  {value:>10.1f} {bar}")
    return "\n".join(lines)


def render_histogram(
    bin_edges: Sequence[float],
    counts: Sequence[int],
    title: str = "",
    width: int = 50,
) -> str:
    """Render a histogram with one bar per bin (Fig. 6 style)."""
    if len(counts) != len(bin_edges) - 1:
        raise ValueError("counts must have exactly len(bin_edges) - 1 entries")
    lines = []
    if title:
        lines.append(title)
    maximum = max(counts, default=0)
    for low, high, count in zip(bin_edges, bin_edges[1:], counts):
        bar = "#" * _scaled(count, maximum, width)
        lines.append(f"  {low:>4.1f} - {high:<4.1f} {count:>8} {bar}")
    return "\n".join(lines)


def render_grouped_bars(
    groups: Mapping[str, Mapping[str, float]],
    title: str = "",
    width: int = 40,
) -> str:
    """Render grouped bars, e.g. per-case E-BLOW-0 vs E-BLOW-1 (Fig. 11/12 style).

    ``groups`` maps a group label (benchmark case) to ``{series: value}``.
    """
    lines = []
    if title:
        lines.append(title)
    maximum = max(
        (value for series in groups.values() for value in series.values()),
        default=0.0,
    )
    for group, series in groups.items():
        lines.append(f"{group}:")
        for name, value in series.items():
            bar = "#" * _scaled(value, maximum, width)
            lines.append(f"  {name:<12} {value:>12.1f} {bar}")
    return "\n".join(lines)
