"""Plain-text table rendering in the layout of the paper's Tables 3-5."""

from __future__ import annotations

from typing import Sequence

from repro.evaluation.compare import Comparison

__all__ = ["format_comparison_table", "format_ratio_row"]


def format_comparison_table(
    comparison: Comparison,
    reference: str | None = None,
    metrics: Sequence[str] = ("T", "char#", "CPU(s)"),
) -> str:
    """Render the comparison as a fixed-width text table.

    Each algorithm contributes three columns (writing time, characters on the
    stencil, runtime); the final rows give per-algorithm averages and, when a
    ``reference`` algorithm is named, the ratios relative to it — matching the
    "Avg." / "Ratio" rows of the paper's tables.
    """
    algorithms = comparison.algorithms()
    header_1 = ["case", "char#", "CP#"]
    for name in algorithms:
        header_1.extend([f"{name}:{m}" for m in metrics])

    def fmt(value: float, metric: str) -> str:
        if metric == "char#":
            return f"{value:.0f}"
        if metric == "CPU(s)":
            return f"{value:.2f}"
        return f"{value:.0f}"

    lines = []
    widths = [max(10, len(h) + 1) for h in header_1]
    lines.append("".join(h.ljust(w) for h, w in zip(header_1, widths)))
    lines.append("-" * sum(widths))

    for row in comparison.rows:
        cells = [
            row.case,
            str(row.instance_summary.get("num_characters", "")),
            str(row.instance_summary.get("num_regions", "")),
        ]
        for name in algorithms:
            result = row.results.get(name)
            if result is None:
                cells.extend(["-", "-", "-"])
            else:
                cells.extend(
                    [
                        fmt(result.writing_time, "T"),
                        fmt(result.num_selected, "char#"),
                        fmt(result.runtime_seconds, "CPU(s)"),
                    ]
                )
        lines.append("".join(c.ljust(w) for c, w in zip(cells, widths)))

    averages = comparison.averages()
    cells = ["Avg.", "-", "-"]
    for name in algorithms:
        avg = averages.get(name)
        if avg is None:
            cells.extend(["-", "-", "-"])
        else:
            cells.extend(
                [
                    fmt(avg["writing_time"], "T"),
                    fmt(avg["num_selected"], "char#"),
                    fmt(avg["runtime_seconds"], "CPU(s)"),
                ]
            )
    lines.append("-" * sum(widths))
    lines.append("".join(c.ljust(w) for c, w in zip(cells, widths)))

    if reference is not None:
        lines.append(format_ratio_row(comparison, reference, widths, algorithms))
    return "\n".join(lines)


def format_ratio_row(
    comparison: Comparison,
    reference: str,
    widths: Sequence[int],
    algorithms: Sequence[str],
) -> str:
    """The "Ratio" row: averages normalized to the reference algorithm."""
    ratios = comparison.ratios(reference)
    cells = ["Ratio", "-", "-"]
    for name in algorithms:
        ratio = ratios.get(name)
        if ratio is None:
            cells.extend(["-", "-", "-"])
        else:
            cells.extend(
                [
                    f"{ratio['writing_time']:.2f}",
                    f"{ratio['num_selected']:.2f}",
                    f"{ratio['runtime_seconds']:.2f}",
                ]
            )
    return "".join(c.ljust(w) for c, w in zip(cells, widths))
