"""E-BLOW: overlapping-aware stencil planning for e-beam MCC systems.

This package reproduces the system described in *"E-BLOW: E-Beam Lithography
Overlapping aware Stencil Planning for MCC System"* (Yu, Yuan, Gao, Pan —
DAC 2013 / TCAD extension).  The top-level namespace re-exports the pieces a
typical user needs:

>>> from repro import generate_1d_instance, EBlow1DPlanner, evaluate_plan
>>> instance = generate_1d_instance(num_characters=60, num_regions=4, seed=1)
>>> plan = EBlow1DPlanner().plan(instance)
>>> report = evaluate_plan(plan)
>>> report.total <= max(instance.vsb_times())
True

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
reproduction of every table and figure of the paper.
"""

from repro.model import (
    Character,
    OSPInstance,
    Placement2D,
    Region,
    RowPlacement,
    StencilPlan,
    StencilSpec,
    WritingTimeReport,
    evaluate_plan,
    region_writing_times,
    system_writing_time,
)

__version__ = "1.1.0"

__all__ = [
    "Character",
    "Region",
    "StencilSpec",
    "OSPInstance",
    "RowPlacement",
    "Placement2D",
    "StencilPlan",
    "WritingTimeReport",
    "evaluate_plan",
    "region_writing_times",
    "system_writing_time",
    "EBlow1DPlanner",
    "EBlow2DPlanner",
    "generate_1d_instance",
    "generate_2d_instance",
    # The unified planning API (see repro.api for the full surface).
    "plan",
    "planner_pool",
    "PlanRequest",
    "PlanResult",
    "PlanEvent",
    "list_planners",
    "__version__",
]

# Lazily resolved top-level attributes: planners/generators plus the façade
# surface of :mod:`repro.api`.  Lazy imports keep ``import repro`` cheap and
# avoid import cycles.
_LAZY_ATTRS = {
    "EBlow1DPlanner": ("repro.core.onedim.planner", "EBlow1DPlanner"),
    "EBlow2DPlanner": ("repro.core.twodim.planner", "EBlow2DPlanner"),
    "generate_1d_instance": ("repro.workloads.generator", "generate_1d_instance"),
    "generate_2d_instance": ("repro.workloads.generator", "generate_2d_instance"),
    "plan": ("repro.api", "plan"),
    "planner_pool": ("repro.api", "planner_pool"),
    "PlanRequest": ("repro.api", "PlanRequest"),
    "PlanResult": ("repro.api", "PlanResult"),
    "PlanEvent": ("repro.api", "PlanEvent"),
    "list_planners": ("repro.api", "list_planners"),
    # attr None: the attribute is the module itself
    # (`import repro; repro.api.<...>` without an extra import).
    "api": ("repro.api", None),
}


def __getattr__(name):
    target = _LAZY_ATTRS.get(name)
    if target is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module_name, attr = target
    module = importlib.import_module(module_name)
    return module if attr is None else getattr(module, attr)
