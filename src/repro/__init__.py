"""E-BLOW: overlapping-aware stencil planning for e-beam MCC systems.

This package reproduces the system described in *"E-BLOW: E-Beam Lithography
Overlapping aware Stencil Planning for MCC System"* (Yu, Yuan, Gao, Pan —
DAC 2013 / TCAD extension).  The top-level namespace re-exports the pieces a
typical user needs:

>>> from repro import generate_1d_instance, EBlow1DPlanner, evaluate_plan
>>> instance = generate_1d_instance(num_characters=60, num_regions=4, seed=1)
>>> plan = EBlow1DPlanner().plan(instance)
>>> report = evaluate_plan(plan)
>>> report.total <= max(instance.vsb_times())
True

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
reproduction of every table and figure of the paper.
"""

from repro.model import (
    Character,
    OSPInstance,
    Placement2D,
    Region,
    RowPlacement,
    StencilPlan,
    StencilSpec,
    WritingTimeReport,
    evaluate_plan,
    region_writing_times,
    system_writing_time,
)

__version__ = "1.0.0"

__all__ = [
    "Character",
    "Region",
    "StencilSpec",
    "OSPInstance",
    "RowPlacement",
    "Placement2D",
    "StencilPlan",
    "WritingTimeReport",
    "evaluate_plan",
    "region_writing_times",
    "system_writing_time",
    "EBlow1DPlanner",
    "EBlow2DPlanner",
    "generate_1d_instance",
    "generate_2d_instance",
    "__version__",
]


def __getattr__(name):
    # Lazy imports keep ``import repro`` cheap and avoid import cycles while
    # still exposing the main planners and generators at the top level.
    if name == "EBlow1DPlanner":
        from repro.core.onedim.planner import EBlow1DPlanner

        return EBlow1DPlanner
    if name == "EBlow2DPlanner":
        from repro.core.twodim.planner import EBlow2DPlanner

        return EBlow2DPlanner
    if name == "generate_1d_instance":
        from repro.workloads.generator import generate_1d_instance

        return generate_1d_instance
    if name == "generate_2d_instance":
        from repro.workloads.generator import generate_2d_instance

        return generate_2d_instance
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
