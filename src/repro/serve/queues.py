"""Admission control for the serve daemon: bounded per-client fair queues.

The daemon sits between an unbounded number of clients and a warm
:class:`~repro.runtime.pool.PlannerPool` with a small global concurrency
cap.  Two failure modes must be impossible by construction:

* **unbounded buffering** — a flooding client may not grow server memory
  without limit, so each client gets its own bounded deque and pushes
  beyond capacity raise :class:`QueueFullError` (surfaced to the client
  as an explicit ``queue_full`` rejection it can back off on);
* **starvation** — admission drains the clients round-robin (one ticket
  per client per cycle), so a client that queued 16 jobs cannot delay a
  client that queued one by more than a single pool slot.

The queue is a plain single-threaded structure: the server only touches
it from the event loop, so there is no locking here.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any, Iterator

from repro.errors import ReproError

__all__ = ["QueueFullError", "FairQueue"]


class QueueFullError(ReproError):
    """A client's admission queue is at capacity (``queue_full`` rejection)."""


class FairQueue:
    """Bounded per-client queues drained round-robin.

    ``push(client, ticket)`` appends to that client's queue and raises
    :class:`QueueFullError` at the per-client bound.  ``pop()`` removes and
    returns the oldest ticket of the least-recently-served client, rotating
    it to the back of the service order.
    """

    def __init__(self, per_client: int = 16) -> None:
        if per_client < 1:
            raise ValueError(f"per_client must be >= 1, got {per_client}")
        self.per_client = per_client
        self._queues: "OrderedDict[str, deque]" = OrderedDict()

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def __bool__(self) -> bool:
        return any(self._queues.values())

    def push(self, client: str, ticket: Any) -> None:
        queue = self._queues.get(client)
        if queue is None:
            queue = self._queues[client] = deque()
        if len(queue) >= self.per_client:
            raise QueueFullError(
                f"client {client!r} already has {len(queue)} queued requests "
                f"(bound {self.per_client})"
            )
        queue.append(ticket)

    def pop(self) -> Any:
        """The next ticket in round-robin order (raises IndexError when empty)."""
        while self._queues:
            client, queue = next(iter(self._queues.items()))
            # Rotate this client to the back of the service order whether or
            # not it still has work: freshly pushed clients join at the end,
            # so each cycle serves every client once.
            self._queues.move_to_end(client)
            if queue:
                ticket = queue.popleft()
                if not queue:
                    del self._queues[client]
                return ticket
            del self._queues[client]
        raise IndexError("pop from an empty FairQueue")

    def drop(self, client: str) -> list:
        """Remove and return every queued ticket of ``client`` (disconnect)."""
        queue = self._queues.pop(client, None)
        return list(queue) if queue else []

    def depths(self) -> dict[str, int]:
        """Per-client queue depth (only clients with queued work)."""
        return {client: len(queue) for client, queue in self._queues.items() if queue}

    def tickets(self) -> Iterator[Any]:
        """Every queued ticket, in no particular fairness order."""
        for queue in self._queues.values():
            yield from queue
