"""The serve daemon's wire protocol: newline-delimited JSON frames.

One connection carries a bidirectional stream of JSON objects, one per
line (NDJSON).  The shape is deliberately minimal — every frame is a flat
object with a protocol version, so clients in any language are a
``socket`` + ``json`` import away:

Client → server (a *request*)::

    {"v": 1, "id": "q1", "verb": "plan",
     "request": {"planner": "eblow", "case": "1T-1", "scale": 1.0},
     "events": true}

Server → client (*response frames*, all stamped with the request's ``id``
so concurrent requests on one connection demultiplex cleanly)::

    {"v": 1, "id": "q1", "frame": "ack", "job_id": "9f3c…", "state": "queued",
     "outcome": "computed"}
    {"v": 1, "id": "q1", "frame": "event", "event": {…PlanEvent…}}
    {"v": 1, "id": "q1", "frame": "result", "outcome": "computed",
     "result": {…PlanResult…}}

Verbs (see ``docs/SERVING.md`` for the full schema):

==============  =============================================================
``plan``        one :class:`~repro.api.lifecycle.PlanRequest`; streams
                optional ``event`` frames, ends with one ``result`` frame
``batch``       a list of plan requests; one ``result`` frame per request
                (stamped ``index``), ends with a ``done`` summary frame
``portfolio``   race several planner specs on one instance; ends with a
                ``result`` frame carrying the race outcome
``subscribe``   attach to a queued/running job's PlanEvent stream by
                ``job_id``; ``event`` frames until a terminal ``done``
``status``      one ``status`` frame with queue depths / pool health /
                store hit rate
``shutdown``    ``ack``, then the server drains and exits
==============  =============================================================

Terminal frames per request: ``result`` | ``done`` | ``error`` | ``status``
| ``ack`` (for ``shutdown``).  An ``error`` frame carries a stable ``code``
from :data:`ERROR_CODES` — ``queue_full`` and ``draining`` are the
admission-control rejections clients are expected to branch on.
"""

from __future__ import annotations

import json
from typing import Mapping

from repro.errors import ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "VERBS",
    "FRAME_KINDS",
    "ERROR_CODES",
    "OUTCOMES",
    "ProtocolError",
    "encode_frame",
    "decode_frame",
    "request_frame",
    "response_frame",
    "error_frame",
]

#: Version stamp carried by every frame in both directions.
PROTOCOL_VERSION = 1

#: Hard bound on one frame's encoded size (inline 2D instances are the
#: largest legitimate payload; anything beyond this is a protocol error,
#: not a bigger buffer).
MAX_FRAME_BYTES = 32 * 1024 * 1024

VERBS = ("plan", "batch", "portfolio", "subscribe", "status", "shutdown")

FRAME_KINDS = ("ack", "event", "result", "done", "error", "status")

#: How a request was satisfied, also the ``outcome`` label of
#: ``serve_requests_total``: ``computed`` started a fresh execution,
#: ``coalesced`` attached to an identical in-flight job, ``store_hit``
#: was served straight from the result store, ``rejected`` hit admission
#: control, ``error`` failed before admission.
OUTCOMES = ("computed", "coalesced", "store_hit", "rejected", "error")

ERROR_CODES = (
    "bad_request",   # malformed verb payload / unknown planner / bad options
    "queue_full",    # the client's admission queue is at capacity
    "draining",      # server is shutting down and admits no new work
    "unknown_job",   # subscribe target is not queued or running
    "unknown_verb",  # verb not in VERBS
    "protocol",      # unparsable / oversized / versionless frame
    "internal",      # unexpected server-side failure
)


class ProtocolError(ReproError):
    """A frame violated the wire protocol (bad JSON, size, or version)."""


def encode_frame(payload: Mapping) -> bytes:
    """One frame as a newline-terminated JSON line (compact separators)."""
    line = json.dumps(dict(payload), separators=(",", ":"), default=str)
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES}-byte bound"
        )
    return data


def decode_frame(line: bytes | str) -> dict:
    """Parse and validate one NDJSON line into a frame dict."""
    if isinstance(line, bytes):
        if len(line) > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame of {len(line)} bytes exceeds the {MAX_FRAME_BYTES}-byte bound"
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not valid UTF-8: {exc}") from exc
    try:
        frame = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(frame).__name__}")
    version = frame.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} (this side speaks {PROTOCOL_VERSION})"
        )
    return frame


def request_frame(request_id: str, verb: str, **payload) -> dict:
    """A client request frame (``verb`` is validated against :data:`VERBS`)."""
    if verb not in VERBS:
        raise ProtocolError(f"unknown verb {verb!r} (one of {VERBS})")
    return {"v": PROTOCOL_VERSION, "id": request_id, "verb": verb, **payload}


def response_frame(request_id: str | None, kind: str, **payload) -> dict:
    """A server response frame (``kind`` is validated against :data:`FRAME_KINDS`)."""
    if kind not in FRAME_KINDS:
        raise ProtocolError(f"unknown frame kind {kind!r} (one of {FRAME_KINDS})")
    return {"v": PROTOCOL_VERSION, "id": request_id, "frame": kind, **payload}


def error_frame(request_id: str | None, code: str, message: str) -> dict:
    """An ``error`` response frame with a stable machine-readable ``code``."""
    if code not in ERROR_CODES:
        code = "internal"
    return response_frame(request_id, "error", code=code, message=message)
