"""``repro.serve`` — the resident planning daemon and its client.

Server side (:mod:`repro.serve.server`): a long-lived asyncio process that
multiplexes many clients onto one warm planner pool, coalescing identical
in-flight requests by content-hash job id, admitting work through bounded
fair queues, and fanning the :class:`~repro.events.PlanEvent` stream out to
any number of subscribers.  Start it with ``python -m repro serve`` (or
``eblow serve``), or in-process via :func:`start_in_thread`.

Client side (:mod:`repro.serve.client`): a blocking :class:`ServeClient`
mirroring the ``repro.plan`` façade over the wire.

See ``docs/SERVING.md`` for the protocol and semantics.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import (
    ERROR_CODES,
    FRAME_KINDS,
    MAX_FRAME_BYTES,
    OUTCOMES,
    PROTOCOL_VERSION,
    VERBS,
    ProtocolError,
)
from repro.serve.queues import FairQueue, QueueFullError
from repro.serve.server import PlanServer, ServeConfig, ServerHandle, start_in_thread

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "VERBS",
    "FRAME_KINDS",
    "ERROR_CODES",
    "OUTCOMES",
    "ProtocolError",
    "FairQueue",
    "QueueFullError",
    "ServeConfig",
    "PlanServer",
    "ServerHandle",
    "start_in_thread",
    "ServeClient",
    "ServeError",
]
