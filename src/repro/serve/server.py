"""The resident planning daemon: an asyncio server over the warm runtime.

``python -m repro serve`` keeps one process alive between requests so no
client ever pays cold-start: a warm :class:`~repro.runtime.pool.PlannerPool`
(worker processes with per-digest instance caches and a shared-memory
arena), one :class:`~repro.runtime.store.ResultStore`, and one metrics
registry serve every connection.  Clients speak the NDJSON protocol of
:mod:`repro.serve.protocol` over a Unix socket or localhost TCP.

The server's three load-bearing behaviours:

* **Coalescing** — work is keyed by the content-hash job id, so identical
  concurrent requests share one :class:`Flight`: the first request
  computes, duplicates attach as extra waiters and receive the same
  result frame (``serve_requests_total{outcome="coalesced"}``); identical
  *later* requests are answered straight from the result store
  (``outcome="store_hit"``).  Exactly one pool execution per distinct job,
  ever, no matter the client arrival pattern.
* **Admission control** — each client has a bounded queue inside a
  :class:`~repro.serve.queues.FairQueue`; pushes beyond the bound are
  rejected with ``queue_full``, and the pump drains clients round-robin
  into at most ``max_inflight`` concurrent pool executions, so a flooding
  client can neither exhaust memory nor starve its neighbours.
* **Event fan-out** — every flight keeps a bounded replay buffer of its
  relayed :class:`~repro.events.PlanEvent` stream and any number of
  subscriber :class:`EventChannel` s; a slow consumer buffers up to
  ``event_buffer`` events and then loses the *oldest* ones
  (``serve_subscriber_events_total{outcome="dropped"}``) instead of
  back-pressuring the planner or its fellow subscribers.

Lifecycle: SIGTERM / SIGINT (or the ``shutdown`` verb) starts a graceful
drain — stop admitting, let queued + running flights finish within
``drain_grace`` seconds, then escalate through the pool's soft-cancel /
terminate ladder — and ends with the telemetry flush: an optional store
prune, a metrics snapshot written to ``metrics_out``, and a full pool +
arena teardown that leaves no orphaned workers or ``/dev/shm`` segments.

Threading model: the event loop owns every data structure in this module
(flights, queues, channels).  Blocking work — pool dispatch + collect,
store writes, portfolio races — runs on a small ``ThreadPoolExecutor``;
the only thread → loop crossings are ``call_soon_threadsafe`` hops (event
routing, ready/shutdown signalling), and the only loop → thread state
shared is the dispatch lock serialising arena exports.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.api.lifecycle import PlanRequest, PlanResult
from repro.errors import ValidationError
from repro.events import PlanEvent
from repro.obs import metrics as obs_metrics
from repro.runtime.jobs import JobResult, PlannerSpec
from repro.runtime.pool import EventRelay, PlannerPool
from repro.runtime.store import ResultStore
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    encode_frame,
    decode_frame,
    error_frame,
    response_frame,
)
from repro.serve.queues import FairQueue, QueueFullError

__all__ = ["ServeConfig", "PlanServer", "ServerHandle", "start_in_thread"]

#: Seconds the server waits after a flight's result for a straggling
#: ``finished`` event before force-closing its subscriber channels (covers
#: failure paths that emit no events at all: descriptor rebuild errors,
#: broken pools, drain cancellations).
_CHANNEL_SETTLE = 0.5

_REQUESTS = obs_metrics.declare_counter(
    "serve_requests_total",
    "Planning requests handled by the serve daemon, by how they resolved",
    ("verb", "outcome"),
)
_CONNECTIONS = obs_metrics.declare_gauge(
    "serve_connections", "Currently connected serve clients"
)
_CONNECTIONS_TOTAL = obs_metrics.declare_counter(
    "serve_connections_total", "Client connections accepted by the serve daemon"
)
_INFLIGHT = obs_metrics.declare_gauge(
    "serve_inflight_jobs", "Flights currently executing on the serve pool"
)
_QUEUE_DEPTH = obs_metrics.declare_gauge(
    "serve_queue_depth", "Admitted flights waiting for a pool slot"
)
_SUB_EVENTS = obs_metrics.declare_counter(
    "serve_subscriber_events_total",
    "Plan events fanned out to serve subscribers",
    ("outcome",),
)
_REQUEST_SECONDS = obs_metrics.declare_histogram(
    "serve_request_seconds", "Wall seconds per serve request", ("verb",)
)


@dataclass
class ServeConfig:
    """Tunables of one :class:`PlanServer` (see ``docs/SERVING.md``)."""

    #: Exactly one of ``socket`` (a Unix socket path) or ``port`` must be
    #: set; ``port=0`` binds an ephemeral localhost port (read it back from
    #: :attr:`PlanServer.address`).
    socket: str | None = None
    host: str = "127.0.0.1"
    port: int | None = None
    #: Worker processes of the warm planning pool.
    workers: int = 1
    #: Global cap on concurrently executing flights (pool slots).
    max_inflight: int = 2
    #: Bound of each client's admission queue (beyond it: ``queue_full``).
    per_client_queue: int = 16
    #: Per-subscriber event buffer; overflow drops the oldest events.
    event_buffer: int = 256
    #: Seconds a drain lets queued + running flights finish before the
    #: escalating cancellation ladder kicks in.
    drain_grace: float = 10.0
    #: Result store (``cache=False`` disables it entirely).
    cache: bool = True
    cache_dir: str | None = None
    #: When set, the drain prunes the store to this byte budget (LRU).
    prune_bytes: int | None = None
    #: When set, the drain writes the registry snapshot here (JSON).
    metrics_out: str | None = None
    #: Pool-level retries for failed job attempts.
    retries: int = 0
    #: When set, flights execute over the durable broker spool at this
    #: directory instead of an in-process pool: ``workers`` becomes the
    #: number of ``eblow worker`` subprocesses the daemon owns (0 = rely on
    #: externally launched workers attached to the same spool).  Live event
    #: streams do not cross the spool, so ``subscribe`` delivers no events
    #: for broker-served flights.
    broker: str | None = None
    broker_queue: str = "default"

    def __post_init__(self) -> None:
        if (self.socket is None) == (self.port is None):
            raise ValidationError("ServeConfig needs exactly one of socket= or port=")
        if self.max_inflight < 1:
            raise ValidationError(f"max_inflight must be >= 1, got {self.max_inflight}")


class EventChannel:
    """One subscriber's buffered view of a flight's event stream.

    ``publish`` never blocks: the deque's ``maxlen`` drops the oldest
    buffered event on overflow (counted, surfaced on the terminal frame as
    ``dropped``).  ``async for`` yields events until :meth:`close`.
    """

    def __init__(self, buffer: int) -> None:
        self._items: deque[PlanEvent] = deque(maxlen=max(1, buffer))
        self._wake = asyncio.Event()
        self._closed = False
        self.dropped = 0

    def publish(self, event: PlanEvent) -> None:
        if self._closed:
            return
        if len(self._items) == self._items.maxlen:
            self.dropped += 1
            _SUB_EVENTS.inc(outcome="dropped")
        self._items.append(event)
        self._wake.set()

    def close(self) -> None:
        self._closed = True
        self._wake.set()

    def __aiter__(self) -> "EventChannel":
        return self

    async def __anext__(self) -> PlanEvent:
        while True:
            if self._items:
                return self._items.popleft()
            if self._closed:
                raise StopAsyncIteration
            self._wake.clear()
            await self._wake.wait()


class Flight:
    """One admitted unit of work and everyone attached to it.

    For ``plan`` requests the flight is keyed by the content-hash job id —
    that key is what makes coalescing correct: every request that maps to
    the same id attaches to the same flight.  ``portfolio`` requests get a
    synthetic per-request key (races are not content-addressed).
    """

    __slots__ = (
        "key", "kind", "job", "run", "done", "state",
        "waiters", "channels", "events", "saw_finished", "finished",
    )

    def __init__(self, key: str, kind: str, run: Callable, done: asyncio.Future,
                 event_buffer: int, job=None) -> None:
        self.key = key
        self.kind = kind  # "plan" | "portfolio"
        self.job = job
        self.run = run  # blocking callable, executed on the compute executor
        self.done = done
        self.state = "queued"  # queued | running | done
        self.waiters = 0
        self.channels: set[EventChannel] = set()
        self.events: deque[PlanEvent] = deque(maxlen=max(1, event_buffer))
        self.saw_finished = False
        self.finished = False

    @property
    def abandoned(self) -> bool:
        """Queued with nobody left listening — the pump skips it."""
        return self.waiters <= 0 and not self.channels


class _Connection:
    """Per-client write half: serialized frame writes + identity."""

    def __init__(self, client: str, writer: asyncio.StreamWriter) -> None:
        self.client = client
        self._writer = writer
        self._lock = asyncio.Lock()

    async def send(self, frame: Mapping) -> None:
        async with self._lock:
            self._writer.write(encode_frame(frame))
            await self._writer.drain()

    def close(self) -> None:
        try:
            self._writer.close()
        except Exception:  # noqa: BLE001 — transport already torn down
            pass


class PlanServer:
    """The daemon: accept NDJSON connections, multiplex them onto one pool."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        #: Bound address once listening: the socket path, or ``(host, port)``
        #: with the actual ephemeral port filled in.
        self.address: object | None = None
        #: Optional callback invoked (in the loop) once the server listens.
        self.on_ready: Callable[[object], None] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._pool: PlannerPool | None = None
        self._aux_pools: set[PlannerPool] = set()
        self._scheduler = None  # BrokerScheduler when config.broker is set
        self._relay: EventRelay | None = None
        self._compute: ThreadPoolExecutor | None = None
        self._store: ResultStore | None = None
        self._dispatch_lock = threading.Lock()
        self._queue = FairQueue(per_client=config.per_client_queue)
        self._flights: dict[str, Flight] = {}
        self._connections: dict[str, _Connection] = {}
        self._running = 0
        self._draining = False
        self._shutdown_event: asyncio.Event | None = None
        self._started = time.monotonic()
        self._next_client = 0
        self._counts = {k: 0 for k in ("computed", "coalesced", "store_hit", "rejected", "error")}
        self._store_probes = 0
        self._store_hits = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def run(self) -> None:
        """Serve until a shutdown signal, then drain and flush. Blocks."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._started = time.monotonic()
        self._shutdown_event = asyncio.Event()
        registry = obs_metrics.MetricsRegistry()
        previous = obs_metrics.installed()
        obs_metrics.install(registry)
        self._store = (
            ResultStore(self.config.cache_dir) if self.config.cache else None
        )
        if self.config.broker is not None:
            # Broker mode: flights ride the durable spool, served by worker
            # subprocesses — no in-process pool (and no live event relay;
            # events do not cross the spool).
            from repro.dist import BrokerConfig, BrokerScheduler

            self._scheduler = BrokerScheduler(
                self.config.broker,
                queue=self.config.broker_queue,
                config=BrokerConfig(
                    store_dir=str(self._store.root) if self._store is not None else None
                ),
                workers=max(0, self.config.workers),
            )
        else:
            self._pool = PlannerPool(
                max_workers=self.config.workers, retries=self.config.retries
            )
            self._relay = EventRelay(self._on_relay_event)
        self._compute = ThreadPoolExecutor(
            max_workers=self.config.max_inflight + 1, thread_name_prefix="serve-compute"
        )
        import signal as _signal

        handled_signals = []
        for signum in (_signal.SIGTERM, _signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
                handled_signals.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or restricted platform
        try:
            if self.config.socket is not None:
                path = self.config.socket
                if os.path.exists(path):
                    os.unlink(path)  # stale socket from a previous run
                self._server = await asyncio.start_unix_server(
                    self._handle_connection, path=path, limit=MAX_FRAME_BYTES
                )
                self.address = path
            else:
                self._server = await asyncio.start_server(
                    self._handle_connection,
                    host=self.config.host,
                    port=self.config.port,
                    limit=MAX_FRAME_BYTES,
                )
                bound = self._server.sockets[0].getsockname()
                self.address = (bound[0], bound[1])
            if self.on_ready is not None:
                self.on_ready(self.address)
            await self._shutdown_event.wait()
            await self._drain()
        finally:
            await self._teardown(registry)
            for signum in handled_signals:
                try:
                    loop.remove_signal_handler(signum)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass
            obs_metrics.uninstall()
            if previous is not None:
                obs_metrics.install(previous)

    def request_shutdown(self) -> None:
        """Begin a graceful drain (idempotent; safe from the loop thread)."""
        if self._shutdown_event is not None and not self._shutdown_event.is_set():
            # Stop admitting immediately: requests dispatched between this
            # ack and the drain loop taking over must already see rejection.
            self._draining = True
            self._shutdown_event.set()

    def request_shutdown_threadsafe(self) -> None:
        """Begin a graceful drain from any thread."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self.request_shutdown)
        except RuntimeError:
            pass

    async def _drain(self) -> None:
        """Stop admitting, let in-flight work finish, escalate past the grace."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + max(0.0, self.config.drain_grace)
        while (self._queue or self._running) and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        if self._queue or self._running:
            # Grace expired: fail whatever never ran, soft-cancel the rest,
            # and escalate to pool teardown so stuck collects unblock.
            while self._queue:
                flight = self._queue.pop()
                self._flights.pop(flight.key, None)
                if not flight.done.done():
                    flight.done.set_result(self._drain_result(flight))
                self._finish_flight(flight)
            _QUEUE_DEPTH.set(0)
            for pool in [self._pool, *self._aux_pools]:
                if pool is not None:
                    pool.cancel_running()
            settle = time.monotonic() + max(0.5, self._pool.cancel_grace if self._pool else 0.5)
            while self._running and time.monotonic() < settle:
                await asyncio.sleep(0.05)
            if self._running:
                for pool in [self._pool, *self._aux_pools]:
                    if pool is not None:
                        pool.abandon_running()
                        pool.shutdown(wait=False)
            while self._running:
                await asyncio.sleep(0.05)
        # Let waiter tasks write their final result frames before teardown.
        await asyncio.sleep(0.05)

    @staticmethod
    def _drain_result(flight: Flight):
        if flight.kind == "portfolio":
            from repro.runtime.portfolio import PortfolioOutcome

            return PortfolioOutcome(winner=None)
        job = flight.job
        return JobResult(
            job_id=job.job_id,
            case=job.case_name,
            label=job.display_label,
            planner=job.spec.planner,
            status="cancelled",
            error="server drained before the job ran",
        )

    async def _teardown(self, registry) -> None:
        loop = asyncio.get_running_loop()
        if self._compute is not None:
            await loop.run_in_executor(None, lambda: self._compute.shutdown(wait=True))
        for pool in [self._pool, *self._aux_pools]:
            if pool is not None:
                await loop.run_in_executor(None, pool.shutdown)
        self._aux_pools.clear()
        if self._scheduler is not None:
            await loop.run_in_executor(None, self._scheduler.close)
        if self._relay is not None:
            await loop.run_in_executor(None, self._relay.close)
        if self._store is not None and self.config.prune_bytes is not None:
            try:
                self._store.prune(self.config.prune_bytes)
            except Exception:  # noqa: BLE001 — pruning must never fail shutdown
                pass
        if self.config.metrics_out:
            from repro.obs.export import write_snapshot

            try:
                write_snapshot(registry.snapshot(), self.config.metrics_out)
            except Exception:  # noqa: BLE001
                pass
        for conn in list(self._connections.values()):
            conn.close()
        self._connections.clear()
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except Exception:  # noqa: BLE001
                pass
        if self.config.socket is not None:
            try:
                os.unlink(self.config.socket)
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._next_client += 1
        client = f"c{self._next_client}"
        conn = _Connection(client, writer)
        self._connections[client] = conn
        _CONNECTIONS.set(len(self._connections))
        _CONNECTIONS_TOTAL.inc()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Oversized line: the stream lost frame sync, bail out.
                    await conn.send(error_frame(
                        None, "protocol",
                        f"frame exceeds the {MAX_FRAME_BYTES}-byte bound",
                    ))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    frame = decode_frame(line)
                except ProtocolError as exc:
                    await conn.send(error_frame(None, "protocol", str(exc)))
                    continue
                task = asyncio.create_task(self._dispatch(conn, frame))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop shutdown cancelled us mid-readline (teardown has already
            # run).  Exit normally: a task left in the cancelled state trips
            # the stream protocol's done-callback into logging a spurious
            # "Exception in callback" traceback at interpreter exit.
            pass
        finally:
            for task in tasks:
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            self._connections.pop(client, None)
            _CONNECTIONS.set(len(self._connections))
            conn.close()

    async def _dispatch(self, conn: _Connection, frame: Mapping) -> None:
        verb = frame.get("verb")
        rid = frame.get("id")
        started = time.monotonic()
        try:
            handler = {
                "plan": self._handle_plan,
                "batch": self._handle_batch,
                "portfolio": self._handle_portfolio,
                "subscribe": self._handle_subscribe,
                "status": self._handle_status,
                "shutdown": self._handle_shutdown,
            }.get(verb)
            if handler is None:
                await conn.send(error_frame(rid, "unknown_verb", f"unknown verb {verb!r}"))
                return
            await handler(conn, frame)
        except asyncio.CancelledError:
            raise
        except (ConnectionError, BrokenPipeError):
            pass  # client went away mid-response
        except Exception as exc:  # noqa: BLE001 — one bad request must not kill the daemon
            try:
                await conn.send(
                    error_frame(rid, "internal", f"{type(exc).__name__}: {exc}")
                )
            except Exception:  # noqa: BLE001
                pass
        finally:
            _REQUEST_SECONDS.observe(time.monotonic() - started, verb=str(verb))

    # ------------------------------------------------------------------ #
    # Verbs
    # ------------------------------------------------------------------ #
    def _count(self, verb: str, outcome: str) -> None:
        self._counts[outcome] = self._counts.get(outcome, 0) + 1
        _REQUESTS.inc(verb=verb, outcome=outcome)

    async def _handle_plan(self, conn: _Connection, frame: Mapping) -> None:
        await self._serve_plan(conn, frame.get("id"), frame.get("request"),
                               want_events=bool(frame.get("events")))

    async def _serve_plan(
        self,
        conn: _Connection,
        rid,
        payload,
        want_events: bool,
        index: int | None = None,
        verb: str = "plan",
    ) -> str:
        """The shared plan path (``plan`` and each ``batch`` element).

        Returns the terminal status string (``ok`` / ``error`` / ... /
        ``rejected``) for the batch summary.
        """
        extra = {} if index is None else {"index": index}
        try:
            if not isinstance(payload, Mapping):
                raise ValidationError("missing or malformed 'request' object")
            request = PlanRequest.from_dict(payload).validated()
            job = request.to_job()
        except Exception as exc:  # noqa: BLE001 — anything wrong with the payload
            self._count(verb, "error")
            await conn.send(error_frame(rid, "bad_request", f"{type(exc).__name__}: {exc}") | extra)
            return "rejected"
        if self._draining:
            self._count(verb, "rejected")
            await conn.send(error_frame(rid, "draining", "server is draining") | extra)
            return "rejected"
        if self._store is not None:
            self._store_probes += 1
            cached = self._store.get(job)
            if cached is not None:
                self._store_hits += 1
                self._count(verb, "store_hit")
                result = PlanResult.from_job_result(cached, timeout=request.timeout)
                await conn.send(response_frame(
                    rid, "ack", job_id=job.job_id, state="done", outcome="store_hit", **extra
                ))
                await conn.send(response_frame(
                    rid, "result", outcome="store_hit", result=result.to_dict(), **extra
                ))
                return result.status
        flight = self._flights.get(job.job_id)
        if flight is not None:
            outcome = "coalesced"
            flight.waiters += 1
        else:
            flight = Flight(
                key=job.job_id,
                kind="plan",
                run=None,
                done=self._loop.create_future(),
                event_buffer=self.config.event_buffer,
                job=job,
            )
            flight.run = lambda flight=flight: self._compute_plan(flight)
            # Count this waiter before the pump sees the flight: a flight
            # with no waiters and no subscribers is "abandoned" and skipped.
            flight.waiters = 1
            try:
                self._queue.push(conn.client, flight)
            except QueueFullError as exc:
                self._count(verb, "rejected")
                await conn.send(error_frame(rid, "queue_full", str(exc)) | extra)
                return "rejected"
            self._flights[job.job_id] = flight
            _QUEUE_DEPTH.set(len(self._queue))
            outcome = "computed"
            self._pump()
        self._count(verb, outcome)
        channel: EventChannel | None = None
        if want_events:
            channel = EventChannel(self.config.event_buffer)
            for event in flight.events:
                channel.publish(event)
            if flight.finished:
                channel.close()
            else:
                flight.channels.add(channel)
        try:
            await conn.send(response_frame(
                rid, "ack", job_id=job.job_id, state=flight.state, outcome=outcome, **extra
            ))
            if channel is not None:
                async for event in channel:
                    _SUB_EVENTS.inc(outcome="delivered")
                    await conn.send(response_frame(rid, "event", event=event.to_dict(), **extra))
            result = await asyncio.shield(flight.done)
        finally:
            flight.waiters -= 1
            if channel is not None:
                flight.channels.discard(channel)
        plan_result = PlanResult.from_job_result(result, timeout=request.timeout)
        await conn.send(response_frame(
            rid, "result", outcome=outcome, result=plan_result.to_dict(), **extra
        ))
        return plan_result.status

    async def _handle_batch(self, conn: _Connection, frame: Mapping) -> None:
        rid = frame.get("id")
        requests = frame.get("requests")
        if not isinstance(requests, list) or not requests:
            self._count("batch", "error")
            await conn.send(error_frame(rid, "bad_request", "'requests' must be a non-empty list"))
            return
        want_events = bool(frame.get("events"))
        statuses = await asyncio.gather(*(
            self._serve_plan(conn, rid, payload, want_events, index=index, verb="batch")
            for index, payload in enumerate(requests)
        ))
        summary: dict[str, int] = {}
        for status in statuses:
            summary[status] = summary.get(status, 0) + 1
        await conn.send(response_frame(
            rid, "done", total=len(statuses),
            ok=summary.get("ok", 0), statuses=summary,
        ))

    async def _handle_portfolio(self, conn: _Connection, frame: Mapping) -> None:
        rid = frame.get("id")
        if self._draining:
            self._count("portfolio", "rejected")
            await conn.send(error_frame(rid, "draining", "server is draining"))
            return
        try:
            params = self._portfolio_params(frame)
        except Exception as exc:  # noqa: BLE001
            self._count("portfolio", "error")
            await conn.send(error_frame(rid, "bad_request", f"{type(exc).__name__}: {exc}"))
            return
        key = f"portfolio:{conn.client}:{rid}"
        flight = Flight(
            key=key,
            kind="portfolio",
            run=None,
            done=self._loop.create_future(),
            event_buffer=self.config.event_buffer,
        )
        flight.run = lambda: self._run_portfolio(flight, params)
        flight.waiters = 1  # counted before the pump can see the flight
        try:
            self._queue.push(conn.client, flight)
        except QueueFullError as exc:
            self._count("portfolio", "rejected")
            await conn.send(error_frame(rid, "queue_full", str(exc)))
            return
        self._flights[key] = flight
        _QUEUE_DEPTH.set(len(self._queue))
        self._count("portfolio", "computed")
        self._pump()
        channel: EventChannel | None = None
        if frame.get("events"):
            channel = EventChannel(self.config.event_buffer)
            flight.channels.add(channel)
        try:
            await conn.send(response_frame(
                rid, "ack", job_id=key, state=flight.state, outcome="computed"
            ))
            if channel is not None:
                async for event in channel:
                    _SUB_EVENTS.inc(outcome="delivered")
                    await conn.send(response_frame(rid, "event", event=event.to_dict()))
            outcome = await asyncio.shield(flight.done)
        finally:
            flight.waiters -= 1
            if channel is not None:
                flight.channels.discard(channel)
        await conn.send(response_frame(
            rid, "result", outcome="computed", portfolio={
                "ok": outcome.ok,
                "wall_seconds": outcome.wall_seconds,
                "cancelled": list(outcome.cancelled),
                "winner": outcome.winner.to_dict() if outcome.winner is not None else None,
                "results": [r.to_dict() for r in outcome.results],
            },
        ))

    @staticmethod
    def _portfolio_params(frame: Mapping) -> dict:
        entries_raw = frame.get("entries")
        if not isinstance(entries_raw, Mapping) or not entries_raw:
            raise ValidationError("'entries' must be a non-empty {label: planner} object")
        entries = {}
        for label, value in entries_raw.items():
            if isinstance(value, Mapping):
                entries[label] = PlannerSpec(value["planner"], dict(value.get("options", {})))
            else:
                entries[label] = PlannerSpec(str(value))
        case = frame.get("case")
        instance = frame.get("instance")
        if (case is None) == (instance is None):
            raise ValidationError("portfolio needs exactly one of 'case' or 'instance'")
        if instance is not None:
            from repro.model import OSPInstance

            target = OSPInstance.from_dict(instance)
        else:
            target = case
        return {
            "target": target,
            "entries": entries,
            "scale": frame.get("scale"),
            "timeout": frame.get("timeout"),
            "budget": frame.get("budget"),
            "goal": frame.get("target"),
            "straggler_grace": frame.get("straggler_grace"),
            "workers": frame.get("jobs"),
        }

    async def _handle_subscribe(self, conn: _Connection, frame: Mapping) -> None:
        rid = frame.get("id")
        job_id = frame.get("job_id")
        flight = self._flights.get(job_id) if isinstance(job_id, str) else None
        if flight is None:
            await conn.send(error_frame(
                rid, "unknown_job", f"no queued or running job {job_id!r}"
            ))
            return
        channel = EventChannel(self.config.event_buffer)
        for event in flight.events:
            channel.publish(event)
        if flight.finished:
            channel.close()
        else:
            flight.channels.add(channel)
        await conn.send(response_frame(rid, "ack", job_id=flight.key, state=flight.state))
        try:
            async for event in channel:
                _SUB_EVENTS.inc(outcome="delivered")
                await conn.send(response_frame(rid, "event", event=event.to_dict()))
        finally:
            flight.channels.discard(channel)
        status = None
        if flight.done.done():
            result = flight.done.result()
            status = getattr(result, "status", None)
            if status is None:
                status = "ok" if result.ok else "error"
        await conn.send(response_frame(
            rid, "done", job_id=flight.key, state=flight.state,
            status=status, dropped=channel.dropped,
        ))

    async def _handle_status(self, conn: _Connection, frame: Mapping) -> None:
        pool = self._pool
        store_stats = {
            "enabled": self._store is not None,
            "probes": self._store_probes,
            "hits": self._store_hits,
            "hit_rate": (self._store_hits / self._store_probes) if self._store_probes else 0.0,
        }
        await conn.send(response_frame(
            frame.get("id"), "status",
            uptime_seconds=time.monotonic() - self._started,
            draining=self._draining,
            connections=len(self._connections),
            inflight=self._running,
            queued=len(self._queue),
            queue_depths=self._queue.depths(),
            flights={
                flight.key: {
                    "kind": flight.kind,
                    "state": flight.state,
                    "waiters": flight.waiters,
                    "subscribers": len(flight.channels),
                }
                for flight in self._flights.values()
            },
            requests=dict(self._counts),
            store=store_stats,
            pool={
                "workers": self.config.workers,
                "max_inflight": self.config.max_inflight,
                "breaks": pool.break_count if pool is not None else 0,
            },
        ))

    async def _handle_shutdown(self, conn: _Connection, frame: Mapping) -> None:
        await conn.send(response_frame(frame.get("id"), "ack", draining=True))
        self.request_shutdown()

    # ------------------------------------------------------------------ #
    # Admission pump + compute
    # ------------------------------------------------------------------ #
    def _pump(self) -> None:
        """Admit queued flights into free pool slots (round-robin)."""
        while self._running < self.config.max_inflight and self._queue:
            flight = self._queue.pop()
            _QUEUE_DEPTH.set(len(self._queue))
            if flight.abandoned:
                self._flights.pop(flight.key, None)
                continue
            flight.state = "running"
            self._running += 1
            _INFLIGHT.set(self._running)
            future = self._loop.run_in_executor(self._compute, flight.run)
            future.add_done_callback(
                lambda f, flight=flight: self._on_flight_done(flight, f)
            )

    def _on_flight_done(self, flight: Flight, future) -> None:
        self._running -= 1
        _INFLIGHT.set(self._running)
        flight.state = "done"
        try:
            result = future.result()
        except Exception as exc:  # noqa: BLE001 — compute wrapper itself failed
            result = self._drain_result(flight)
            if flight.kind == "plan":
                result.status = "error"
                result.error = f"serve execution failed: {type(exc).__name__}: {exc}"
        if not flight.done.done():
            flight.done.set_result(result)
        if flight.saw_finished or flight.kind == "portfolio" or not flight.channels:
            # Portfolio event callbacks stop when run_portfolio returns, and
            # a channelless flight has nothing to settle.
            self._finish_flight(flight)
        else:
            self._loop.call_later(_CHANNEL_SETTLE, self._finish_flight, flight)
        self._pump()

    def _finish_flight(self, flight: Flight) -> None:
        if flight.finished:
            return
        flight.finished = True
        for channel in list(flight.channels):
            channel.close()
        self._flights.pop(flight.key, None)

    def _compute_plan(self, flight: Flight):
        """Blocking (compute thread): one pool execution + store write."""
        job = flight.job
        if self._scheduler is not None:
            # Broker mode: enqueue + collect over the spool.  The worker
            # commit already wrote the store; no driver-side put needed.
            [result] = self._scheduler.run_jobs([job], store=self._store)
            return result
        with self._dispatch_lock:
            # The arena export inside describe()/submit() is not thread-safe;
            # one dispatch at a time, the heavy work happens in the workers.
            [future] = self._pool.submit([job], event_queue=self._relay.queue)
        result = self._pool.collect(job, future)
        if self._store is not None:
            try:
                self._store.put(job, result)
            except Exception:  # noqa: BLE001 — a failed cache write is not a failed plan
                pass
        return result

    def _run_portfolio(self, flight: Flight, params: dict):
        """Blocking (compute thread): one portfolio race on its own pool."""
        from repro.runtime.portfolio import run_portfolio

        entries = params["entries"]
        if self._scheduler is not None:
            # Broker mode: the race's entrants run over the shared spool
            # (no live incumbent events, no cross-node cancellation).
            return run_portfolio(
                params["target"],
                entries,
                scale=params["scale"],
                timeout=params["timeout"],
                budget=params["budget"],
                target=params["goal"],
                store=self._store,
                scheduler=self._scheduler,
            )
        workers = params["workers"] or min(len(entries), os.cpu_count() or 1)
        pool = PlannerPool(max_workers=max(1, int(workers)))
        self._aux_pools.add(pool)
        try:
            return run_portfolio(
                params["target"],
                entries,
                scale=params["scale"],
                timeout=params["timeout"],
                budget=params["budget"],
                target=params["goal"],
                straggler_grace=params["straggler_grace"],
                on_event=lambda event: self._threadsafe_flight_event(flight, event),
                store=self._store,
                pool=pool,
            )
        finally:
            self._aux_pools.discard(pool)
            pool.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # Event routing (relay thread → loop)
    # ------------------------------------------------------------------ #
    def _on_relay_event(self, event: PlanEvent) -> None:
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._route_event, event)
        except RuntimeError:
            pass  # loop shut down mid-flight

    def _threadsafe_flight_event(self, flight: Flight, event: PlanEvent) -> None:
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._flight_event, flight, event)
        except RuntimeError:
            pass

    def _route_event(self, event: PlanEvent) -> None:
        flight = self._flights.get(event.payload.get("job_id"))
        if flight is None:
            return
        self._flight_event(flight, event)

    def _flight_event(self, flight: Flight, event: PlanEvent) -> None:
        flight.events.append(event)
        for channel in list(flight.channels):
            channel.publish(event)
        if event.type == "finished" and flight.kind == "plan":
            flight.saw_finished = True
            if flight.done.done():
                self._finish_flight(flight)


# --------------------------------------------------------------------------- #
# Thread-hosted servers (tests, notebooks)
# --------------------------------------------------------------------------- #


@dataclass
class ServerHandle:
    """A :class:`PlanServer` running on a background thread."""

    server: PlanServer
    thread: threading.Thread
    address: object

    def shutdown(self, timeout: float = 60.0) -> None:
        """Drain the server and join its thread."""
        self.server.request_shutdown_threadsafe()
        self.thread.join(timeout=timeout)
        if self.thread.is_alive():
            raise RuntimeError("serve thread did not shut down within the timeout")

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()


def start_in_thread(config: ServeConfig, ready_timeout: float = 30.0) -> ServerHandle:
    """Run a :class:`PlanServer` on a daemon thread; return once it listens.

    Signal handlers are not installed (not the main thread) — stop it with
    :meth:`ServerHandle.shutdown`.
    """
    server = PlanServer(config)
    ready = threading.Event()
    failure: list[BaseException] = []

    def _on_ready(_address) -> None:
        ready.set()

    server.on_ready = _on_ready

    def _run() -> None:
        try:
            asyncio.run(server.run())
        except BaseException as exc:  # noqa: BLE001 — surface startup failures
            failure.append(exc)
        finally:
            ready.set()

    thread = threading.Thread(target=_run, name="plan-server", daemon=True)
    thread.start()
    if not ready.wait(timeout=ready_timeout):
        server.request_shutdown_threadsafe()
        raise RuntimeError("serve thread did not become ready within the timeout")
    if failure:
        raise RuntimeError(f"serve thread failed to start: {failure[0]}") from failure[0]
    if server.address is None:
        raise RuntimeError("serve thread exited before binding its address")
    return ServerHandle(server=server, thread=thread, address=server.address)
