"""Blocking client for the serve daemon.

:class:`ServeClient` mirrors the façade surface over the wire — the same
arguments ``repro.plan`` takes produce a request frame, and the result
comes back as the same :class:`~repro.api.lifecycle.PlanResult`::

    from repro.serve.client import ServeClient

    with ServeClient(socket="/tmp/eblow.sock") as client:
        result = client.plan("1T-1", planner="eblow", scale=0.12)
        print(result.writing_time)

The client is deliberately synchronous (plain ``socket`` + ``json``): the
daemon carries all the concurrency, and a blocking call per request is the
shape batch scripts and the CLI verbs want.  One client drives one
connection; share nothing across threads (open one client per thread —
connections are cheap, the daemon coalesces the work anyway).
"""

from __future__ import annotations

import itertools
import random
import socket as socketlib
import time
from typing import Callable, Iterator, Mapping

from repro.api.lifecycle import PlanningError, PlanResult
from repro.errors import ReproError
from repro.events import PlanEvent
from repro.serve.protocol import decode_frame, encode_frame, request_frame

__all__ = ["ServeClient", "ServeError"]


class ServeError(ReproError):
    """The daemon answered with an ``error`` frame (or the link failed).

    ``code`` is the protocol's stable error code (``queue_full``,
    ``draining``, ``bad_request``, ...) — ``connection`` for link failures.
    """

    def __init__(self, message: str, code: str = "internal") -> None:
        super().__init__(message)
        self.code = code


class ServeClient:
    """One blocking NDJSON connection to a :class:`~repro.serve.server.PlanServer`.

    ``retries`` arms automatic reconnect: a verb that fails with a
    ``connection`` error (link dropped, daemon restarting) re-dials the
    endpoint and re-sends the request, up to ``retries`` times with seeded
    jittered exponential backoff — safe to repeat, because plan requests
    are content-addressed on the daemon (a retried request coalesces onto
    the in-flight computation or is answered from the store).  ``draining``
    rejections get their own budget (``draining_retries``, default: the
    same as ``retries``): a draining daemon is usually about to be replaced
    by its supervisor, so the retry waits out the restart instead of
    failing the caller.  Budgets are per-verb-call, not per-client.
    """

    def __init__(
        self,
        socket: str | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        timeout: float | None = None,
        retries: int = 0,
        draining_retries: int | None = None,
        retry_base: float = 0.1,
        retry_cap: float = 2.0,
        retry_jitter: float = 0.5,
        retry_seed: int = 0,
    ) -> None:
        if (socket is None) == (port is None):
            raise ServeError("ServeClient needs exactly one of socket= or port=", code="bad_request")
        self._endpoint = {"socket": socket, "host": host, "port": port, "timeout": timeout}
        self._retries = max(0, int(retries))
        self._draining_retries = (
            self._retries if draining_retries is None else max(0, int(draining_retries))
        )
        self._retry_base = retry_base
        self._retry_cap = retry_cap
        self._retry_jitter = retry_jitter
        self._rng = random.Random(retry_seed)
        self._sock: socketlib.socket | None = None
        self._file = None
        self._ids = itertools.count(1)
        #: Metadata of the most recent request (from its ``ack`` frame).
        self.last_job_id: str | None = None
        self.last_outcome: str | None = None
        #: Successful re-dials performed by the retry machinery.
        self.reconnects = 0
        self._connect_retrying()

    # ------------------------------------------------------------------ #
    # Connection + retry machinery
    # ------------------------------------------------------------------ #
    def _connect(self) -> None:
        socket = self._endpoint["socket"]
        timeout = self._endpoint["timeout"]
        try:
            if socket is not None:
                sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
                sock.settimeout(timeout)
                sock.connect(socket)
            else:
                sock = socketlib.create_connection(
                    (self._endpoint["host"], self._endpoint["port"]), timeout=timeout
                )
        except OSError as exc:
            raise ServeError(f"could not connect to the serve daemon: {exc}", code="connection") from exc
        self._sock = sock
        self._file = sock.makefile("rwb")

    def _delay(self, failures: int) -> float:
        """Jittered exponential backoff for the ``failures``-th failure."""
        base = min(self._retry_cap, self._retry_base * (2 ** max(0, failures - 1)))
        return base * (1.0 + self._retry_jitter * self._rng.random())

    def _connect_retrying(self) -> None:
        """Initial dial, honouring the connection retry budget."""
        failures = 0
        while True:
            try:
                self._connect()
                return
            except ServeError:
                failures += 1
                if failures > self._retries:
                    raise
                time.sleep(self._delay(failures))

    def _reconnect(self) -> None:
        self.close()
        self._connect()
        self.reconnects += 1

    def _retrying(self, attempt: Callable[[], object]):
        """Run ``attempt`` under the reconnect/draining retry budgets."""
        conn_left = self._retries
        drain_left = self._draining_retries
        failures = 0
        while True:
            try:
                return attempt()
            except ServeError as exc:
                if exc.code == "connection":
                    if conn_left <= 0:
                        raise
                    conn_left -= 1
                elif exc.code == "draining":
                    if drain_left <= 0:
                        raise
                    drain_left -= 1
                else:
                    raise
                failures += 1
                # Re-dial until it sticks (consuming the connection budget):
                # a restarting daemon rejects dials for a moment after it
                # drops established links.
                while True:
                    time.sleep(self._delay(failures))
                    try:
                        self._reconnect()
                        break
                    except ServeError:
                        if conn_left <= 0:
                            raise
                        conn_left -= 1
                        failures += 1

    # ------------------------------------------------------------------ #
    # Wire plumbing
    # ------------------------------------------------------------------ #
    def _send(self, verb: str, **payload) -> str:
        rid = f"r{next(self._ids)}"
        if self._file is None:
            raise ServeError("client is not connected", code="connection")
        try:
            self._file.write(encode_frame(request_frame(rid, verb, **payload)))
            self._file.flush()
        except OSError as exc:
            raise ServeError(f"send failed: {exc}", code="connection") from exc
        return rid

    def _frames(self, rid: str) -> Iterator[dict]:
        """Response frames for ``rid``, until (and including) its terminal one."""
        while True:
            try:
                line = self._file.readline()
            except socketlib.timeout as exc:
                raise ServeError("timed out waiting for the daemon", code="connection") from exc
            except OSError as exc:
                raise ServeError(f"receive failed: {exc}", code="connection") from exc
            if not line:
                raise ServeError("connection closed by the daemon", code="connection")
            frame = decode_frame(line)
            if frame.get("id") != rid:
                continue  # a frame for another in-flight request on this link
            yield frame
            kind = frame.get("frame")
            if kind in ("done", "status"):
                return
            if kind in ("result", "error") and frame.get("index") is None:
                return  # terminal; indexed frames are per-batch-entry
            if kind == "ack" and frame.get("draining"):
                return  # shutdown's terminal ack

    @staticmethod
    def _raise(frame: Mapping) -> None:
        raise ServeError(frame.get("message", "request failed"), code=frame.get("code", "internal"))

    # ------------------------------------------------------------------ #
    # Verbs
    # ------------------------------------------------------------------ #
    def plan(
        self,
        instance,
        planner: str = "eblow",
        *,
        options: Mapping[str, object] | None = None,
        scale: float | None = None,
        timeout: float | None = None,
        label: str | None = None,
        on_event: Callable[[PlanEvent], None] | None = None,
        check: bool = True,
    ) -> PlanResult:
        """Plan on the daemon; mirrors :func:`repro.plan`.

        ``instance`` is a benchmark-case name (resolved with ``scale``) or
        an :class:`~repro.model.OSPInstance` shipped inline.  ``on_event``
        receives the live :class:`PlanEvent` stream; with ``check=True`` a
        failed run raises :class:`PlanningError` with the result attached.
        Retried under the reconnect budget (events may replay on a retry).
        """
        return self._retrying(
            lambda: self._plan_once(
                instance, planner, options=options, scale=scale, timeout=timeout,
                label=label, on_event=on_event, check=check,
            )
        )

    def _plan_once(
        self,
        instance,
        planner: str,
        *,
        options,
        scale,
        timeout,
        label,
        on_event,
        check,
    ) -> PlanResult:
        request = self._request_payload(instance, planner, options, scale, timeout, label)
        rid = self._send("plan", request=request, events=on_event is not None)
        result: PlanResult | None = None
        for frame in self._frames(rid):
            kind = frame.get("frame")
            if kind == "ack":
                self.last_job_id = frame.get("job_id")
                self.last_outcome = frame.get("outcome")
            elif kind == "event" and on_event is not None:
                on_event(PlanEvent.from_dict(frame["event"]))
            elif kind == "result":
                self.last_outcome = frame.get("outcome", self.last_outcome)
                result = PlanResult.from_dict(frame["result"])
            elif kind == "error":
                self._raise(frame)
        if result is None:
            raise ServeError("daemon ended the request without a result", code="internal")
        if check and not result.ok:
            raise PlanningError(
                f"planner {planner!r} on {result.case!r} {result.status}: {result.error}",
                result=result,
            )
        return result

    def batch(
        self,
        requests,
        *,
        on_event: Callable[[PlanEvent], None] | None = None,
    ) -> list[PlanResult | ServeError]:
        """Run several plan requests; one list slot per request, in order.

        Each element of ``requests`` is a :class:`PlanRequest`-shaped dict
        (or a :class:`~repro.api.lifecycle.PlanRequest`).  Rejected or
        malformed entries come back as :class:`ServeError` values in their
        slot — the batch itself never raises for per-entry failures.
        Whole-batch failures are retried under the reconnect budget.
        """
        return self._retrying(lambda: self._batch_once(requests, on_event=on_event))

    def _batch_once(self, requests, *, on_event) -> list[PlanResult | ServeError]:
        from repro.api.lifecycle import PlanRequest

        payloads = [
            r.to_dict() if isinstance(r, PlanRequest) else dict(r) for r in requests
        ]
        rid = self._send("batch", requests=payloads, events=on_event is not None)
        slots: list[PlanResult | ServeError | None] = [None] * len(payloads)
        for frame in self._frames(rid):
            kind = frame.get("frame")
            index = frame.get("index")
            if kind == "event" and on_event is not None:
                on_event(PlanEvent.from_dict(frame["event"]))
            elif kind == "result" and index is not None:
                slots[index] = PlanResult.from_dict(frame["result"])
            elif kind == "error":
                if index is None:
                    self._raise(frame)
                slots[index] = ServeError(
                    frame.get("message", "request failed"),
                    code=frame.get("code", "internal"),
                )
        missing = [i for i, slot in enumerate(slots) if slot is None]
        if missing:
            raise ServeError(f"batch ended without results for indices {missing}", code="internal")
        return slots

    def portfolio(
        self,
        instance,
        entries: Mapping[str, object],
        *,
        scale: float | None = None,
        timeout: float | None = None,
        budget: float | None = None,
        target: float | None = None,
        straggler_grace: float | None = None,
        jobs: int | None = None,
        on_event: Callable[[PlanEvent], None] | None = None,
    ) -> dict:
        """Race ``entries`` on the daemon; returns the outcome dict.

        The outcome mirrors :class:`~repro.runtime.portfolio.PortfolioOutcome`:
        ``{"ok", "wall_seconds", "cancelled", "winner", "results"}`` with the
        result records as plain dicts.  Retried under the reconnect budget.
        """
        return self._retrying(
            lambda: self._portfolio_once(
                instance, entries, scale=scale, timeout=timeout, budget=budget,
                target=target, straggler_grace=straggler_grace, jobs=jobs,
                on_event=on_event,
            )
        )

    def _portfolio_once(
        self,
        instance,
        entries: Mapping[str, object],
        *,
        scale,
        timeout,
        budget,
        target,
        straggler_grace,
        jobs,
        on_event,
    ) -> dict:
        payload: dict = {
            "entries": {
                label: (dict(value) if isinstance(value, Mapping) else str(value))
                for label, value in entries.items()
            },
            "scale": scale,
            "timeout": timeout,
            "budget": budget,
            "target": target,
            "straggler_grace": straggler_grace,
            "jobs": jobs,
            "events": on_event is not None,
        }
        if isinstance(instance, str):
            payload["case"] = instance
        else:
            payload["instance"] = instance.to_dict()
        rid = self._send("portfolio", **payload)
        outcome: dict | None = None
        for frame in self._frames(rid):
            kind = frame.get("frame")
            if kind == "ack":
                self.last_job_id = frame.get("job_id")
                self.last_outcome = frame.get("outcome")
            elif kind == "event" and on_event is not None:
                on_event(PlanEvent.from_dict(frame["event"]))
            elif kind == "result":
                outcome = frame["portfolio"]
            elif kind == "error":
                self._raise(frame)
        if outcome is None:
            raise ServeError("daemon ended the portfolio without an outcome", code="internal")
        return outcome

    def iter_events(self, job_id: str) -> Iterator[PlanEvent]:
        """Subscribe to a queued/running job's event stream (``subscribe``).

        Yields each :class:`PlanEvent` until the job finishes; raises
        :class:`ServeError` (``unknown_job``) when no such job is in flight.
        The terminal frame's metadata lands on :attr:`last_done`.
        """
        rid = self._send("subscribe", job_id=job_id)
        self.last_done: dict | None = None
        for frame in self._frames(rid):
            kind = frame.get("frame")
            if kind == "event":
                yield PlanEvent.from_dict(frame["event"])
            elif kind == "done":
                self.last_done = {k: frame.get(k) for k in ("state", "status", "dropped")}
            elif kind == "error":
                self._raise(frame)

    def status(self) -> dict:
        """The daemon's ``status`` frame (queue depths, pool health, counters).

        Retried under the reconnect budget (``draining`` never applies —
        a draining daemon still answers status requests).
        """
        return self._retrying(self._status_once)

    def _status_once(self) -> dict:
        rid = self._send("status")
        for frame in self._frames(rid):
            if frame.get("frame") == "status":
                return {k: v for k, v in frame.items() if k not in ("v", "id", "frame")}
            if frame.get("frame") == "error":
                self._raise(frame)
        raise ServeError("daemon ended the status request without a reply", code="internal")

    def shutdown(self) -> None:
        """Ask the daemon to drain and exit (acknowledged before it does)."""
        rid = self._send("shutdown")
        for frame in self._frames(rid):
            if frame.get("frame") == "error":
                self._raise(frame)

    # ------------------------------------------------------------------ #
    # Housekeeping
    # ------------------------------------------------------------------ #
    @staticmethod
    def _request_payload(instance, planner, options, scale, timeout, label) -> dict:
        payload: dict = {
            "planner": planner,
            "options": dict(options or {}),
            "timeout": timeout,
            "label": label,
        }
        if isinstance(instance, str):
            payload["case"] = instance
            payload["scale"] = scale
        else:
            if scale is not None:
                raise ServeError(
                    "scale= only applies to benchmark-case names", code="bad_request"
                )
            payload["instance"] = instance.to_dict()
        return payload

    def close(self) -> None:
        for closable in (self._file, self._sock):
            if closable is None:
                continue
            try:
                closable.close()
            except OSError:
                pass
        self._file = None
        self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
