"""Process-local metrics registry: counters, gauges, histograms.

The registry is deliberately small and dependency-free — a `Prometheus
client`-shaped surface reduced to what the serving path needs:

* **Families and series** — :meth:`MetricsRegistry.counter` /
  :meth:`~MetricsRegistry.gauge` / :meth:`~MetricsRegistry.histogram` return
  a *family*; ``family.labels(status="ok")`` binds one labeled *series*.
  Families are idempotent per name, series are idempotent per label values,
  and every increment is a plain attribute add under the GIL — the fast path
  takes no lock (locks only guard series/family creation).
* **Snapshot + merge** — :meth:`MetricsRegistry.snapshot` renders the whole
  registry as one JSON-able dict, and :meth:`MetricsRegistry.merge` folds
  such a snapshot back in (counters and histograms add, gauges take the
  incoming value).  That pair is the cross-process protocol: pool workers
  collect into their own registry, ship the snapshot back on the
  :class:`~repro.runtime.jobs.JobResult`, and the parent folds it into the
  process-wide registry — see :mod:`repro.runtime.pool`.
* **Pre-bound instruments** — modules declare their metrics once at import
  time (:func:`declare_counter` / :func:`declare_gauge` /
  :func:`declare_histogram`) and call ``.inc()`` / ``.set()`` /
  ``.observe()`` unconditionally.  When no registry is installed the call is
  one global load and a branch — instrumented hot paths cost nothing in
  normal runs, and none of them ever touches a planner's RNG, so an
  instrumented run stays bit-identical to an uninstrumented one.

Install a process-wide registry with :func:`install` (or the
:func:`collecting` context manager, which restores the previous one):

>>> from repro.obs import metrics
>>> with metrics.collecting() as registry:
...     metrics.declare_counter("demo_total").inc()
...     registry.snapshot()["metrics"]["demo_total"]["series"][0]["value"]
1.0
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Mapping, Sequence

__all__ = [
    "SNAPSHOT_VERSION",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "install",
    "uninstall",
    "installed",
    "collecting",
    "declare_counter",
    "declare_gauge",
    "declare_histogram",
]

#: Version stamp of the snapshot schema (see :meth:`MetricsRegistry.snapshot`).
SNAPSHOT_VERSION = 1

#: Default histogram buckets — upper bounds in seconds, tuned for planner
#: stages (sub-ms LP solves up to minute-long ILP runs).  A ``+Inf`` bucket
#: is implicit: observations beyond the last bound only count toward
#: ``sum`` / ``count``.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class _Series:
    """One labeled time series of a counter or gauge."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def set(self, value: float) -> None:
        self.value = float(value)


class _HistogramSeries:
    """One labeled histogram series: per-bucket counts plus sum/count."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # trailing slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1


class _Family:
    """A named metric with zero or more labeled series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._series: dict[tuple, object] = {}
        self._lock = threading.Lock()

    def _new_series(self):
        return _Series()

    def labels(self, **labels):
        """The series bound to ``labels`` (created on first use)."""
        if tuple(sorted(labels)) != tuple(sorted(self.labelnames)):
            raise ValueError(
                f"metric {self.name!r} takes labels {list(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        series = self._series.get(key)
        if series is None:
            with self._lock:
                series = self._series.setdefault(key, self._new_series())
        return series

    def samples(self) -> Iterator[tuple[dict, object]]:
        """Yield ``(labels_dict, series)`` pairs in insertion order."""
        for key, series in list(self._series.items()):
            yield dict(zip(self.labelnames, key)), series


class Counter(_Family):
    """A monotonically increasing sum."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        self.labels(**labels).inc(amount)


class Gauge(_Family):
    """A value that can go up and down (last write wins on merge)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self.labels(**labels).set(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        self.labels(**labels).inc(amount)


class Histogram(_Family):
    """A distribution: per-bucket counts plus running sum and count."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        self.buckets = tuple(float(b) for b in buckets)
        if list(self.buckets) != sorted(set(self.buckets)):
            raise ValueError(f"histogram {name!r} buckets must be sorted and unique")

    def _new_series(self):
        return _HistogramSeries(self.buckets)

    def observe(self, value: float, **labels) -> None:
        self.labels(**labels).observe(value)


class MetricsRegistry:
    """A set of metric families with snapshot/merge semantics."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Family accessors (idempotent per name)
    # ------------------------------------------------------------------ #
    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs) -> _Family:
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = cls(name, help, labelnames, **kwargs)
                    self._families[name] = family
        if not isinstance(family, cls):
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, not {cls.kind}"
            )
        if tuple(labelnames) != family.labelnames:
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{list(family.labelnames)}, not {list(labelnames)}"
            )
        return family

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)

    def families(self) -> list[_Family]:
        return list(self._families.values())

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def get(self, name: str) -> _Family | None:
        return self._families.get(name)

    # ------------------------------------------------------------------ #
    # Snapshot / merge — the cross-process protocol
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """The whole registry as one JSON-able dict (schema version 1)."""
        metrics: dict[str, dict] = {}
        for family in self.families():
            entry: dict = {
                "type": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "series": [],
            }
            if isinstance(family, Histogram):
                entry["buckets"] = list(family.buckets)
            for labels, series in family.samples():
                if isinstance(series, _HistogramSeries):
                    entry["series"].append(
                        {
                            "labels": labels,
                            "counts": list(series.counts),
                            "sum": series.sum,
                            "count": series.count,
                        }
                    )
                else:
                    entry["series"].append({"labels": labels, "value": series.value})
            metrics[family.name] = entry
        return {"v": SNAPSHOT_VERSION, "metrics": metrics}

    def merge(self, snapshot: Mapping) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histograms *add* (worker deltas accumulate into the
        parent's totals); gauges take the incoming value (the most recent
        report wins).  Families absent here are created from the snapshot's
        metadata, so a parent can merge worker snapshots for metrics it
        never declared itself.
        """
        for name, entry in dict(snapshot.get("metrics", {})).items():
            kind = entry.get("type", "counter")
            labelnames = tuple(entry.get("labelnames", ()))
            if kind == "histogram":
                incoming = tuple(float(b) for b in entry.get("buckets", DEFAULT_BUCKETS))
                family = self.histogram(
                    name, entry.get("help", ""), labelnames, buckets=incoming
                )
                if family.buckets != incoming:
                    raise ValueError(
                        f"histogram {name!r} bucket layout mismatch on merge"
                    )
            elif kind == "gauge":
                family = self.gauge(name, entry.get("help", ""), labelnames)
            else:
                family = self.counter(name, entry.get("help", ""), labelnames)
            for sample in entry.get("series", []):
                labels = dict(sample.get("labels", {}))
                series = family.labels(**labels)
                if isinstance(series, _HistogramSeries):
                    counts = list(sample.get("counts", []))
                    if len(counts) != len(series.counts):
                        raise ValueError(
                            f"histogram {name!r} bucket layout mismatch on merge"
                        )
                    for i, c in enumerate(counts):
                        series.counts[i] += c
                    series.sum += float(sample.get("sum", 0.0))
                    series.count += int(sample.get("count", 0))
                elif family.kind == "gauge":
                    series.set(float(sample.get("value", 0.0)))
                else:
                    series.inc(float(sample.get("value", 0.0)))

    @classmethod
    def from_snapshot(cls, snapshot: Mapping) -> "MetricsRegistry":
        registry = cls()
        registry.merge(snapshot)
        return registry

    def clear(self) -> None:
        self._families.clear()


# --------------------------------------------------------------------------- #
# The process-wide default registry
# --------------------------------------------------------------------------- #

_DEFAULT: MetricsRegistry | None = None


def install(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install ``registry`` (a fresh one by default) as the process default."""
    global _DEFAULT
    if registry is None:
        registry = MetricsRegistry()
    _DEFAULT = registry
    return registry


def uninstall() -> None:
    """Remove the process-default registry (instruments become no-ops)."""
    global _DEFAULT
    _DEFAULT = None


def installed() -> MetricsRegistry | None:
    """The currently installed registry, or None."""
    return _DEFAULT


@contextmanager
def collecting(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Install a registry for the duration of the block (restores the old one)."""
    global _DEFAULT
    previous = _DEFAULT
    registry = install(registry)
    try:
        yield registry
    finally:
        _DEFAULT = previous


# --------------------------------------------------------------------------- #
# Pre-bound instruments
# --------------------------------------------------------------------------- #


class _Instrument:
    """A module-level metric handle resolved lazily against the registry.

    Declared once at import time; every call checks the installed registry
    (one global load + branch when none is) and caches the resolved family
    per registry, so repeated calls under one registry pay a single identity
    check.
    """

    __slots__ = ("name", "help", "labelnames", "_registry", "_family")

    def __init__(self, name: str, help: str, labelnames: Sequence[str]) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._registry: MetricsRegistry | None = None
        self._family: _Family | None = None

    def _resolve(self) -> _Family | None:
        registry = _DEFAULT
        if registry is None:
            return None
        if registry is not self._registry:
            self._family = self._create(registry)
            self._registry = registry
        return self._family

    def _create(self, registry: MetricsRegistry) -> _Family:  # pragma: no cover
        raise NotImplementedError


class CounterInstrument(_Instrument):
    def _create(self, registry: MetricsRegistry) -> Counter:
        return registry.counter(self.name, self.help, self.labelnames)

    def inc(self, amount: float = 1.0, **labels) -> None:
        family = self._resolve()
        if family is not None:
            family.labels(**labels).inc(amount)


class GaugeInstrument(_Instrument):
    def _create(self, registry: MetricsRegistry) -> Gauge:
        return registry.gauge(self.name, self.help, self.labelnames)

    def set(self, value: float, **labels) -> None:
        family = self._resolve()
        if family is not None:
            family.labels(**labels).set(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        family = self._resolve()
        if family is not None:
            family.labels(**labels).inc(amount)


class HistogramInstrument(_Instrument):
    __slots__ = ("buckets",)

    def __init__(self, name, help, labelnames, buckets) -> None:
        super().__init__(name, help, labelnames)
        self.buckets = tuple(buckets)

    def _create(self, registry: MetricsRegistry) -> Histogram:
        return registry.histogram(self.name, self.help, self.labelnames, self.buckets)

    def observe(self, value: float, **labels) -> None:
        family = self._resolve()
        if family is not None:
            family.labels(**labels).observe(value)


def declare_counter(
    name: str, help: str = "", labelnames: Sequence[str] = ()
) -> CounterInstrument:
    """A pre-bound counter handle (no-op until a registry is installed)."""
    return CounterInstrument(name, help, labelnames)


def declare_gauge(
    name: str, help: str = "", labelnames: Sequence[str] = ()
) -> GaugeInstrument:
    """A pre-bound gauge handle (no-op until a registry is installed)."""
    return GaugeInstrument(name, help, labelnames)


def declare_histogram(
    name: str,
    help: str = "",
    labelnames: Sequence[str] = (),
    buckets: Sequence[float] = DEFAULT_BUCKETS,
) -> HistogramInstrument:
    """A pre-bound histogram handle (no-op until a registry is installed)."""
    return HistogramInstrument(name, help, labelnames, buckets)
