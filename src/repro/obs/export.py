"""Snapshot export: JSON files and Prometheus-style text exposition.

A snapshot is the JSON-able dict from
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` (schema version 1):

.. code-block:: json

    {"v": 1, "metrics": {"pool_jobs_total": {"type": "counter", "help": "…",
     "labelnames": ["status", "mode"],
     "series": [{"labels": {"status": "ok", "mode": "pool"}, "value": 12.0}]}}}

:func:`render_prometheus` turns a snapshot into the text exposition format
scrapers understand (``# HELP`` / ``# TYPE`` headers, cumulative histogram
buckets with ``le`` labels plus ``_sum`` / ``_count``), so the future serve
daemon only needs to dump this string on a ``/metrics`` route.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Mapping

from repro.obs.metrics import SNAPSHOT_VERSION

__all__ = [
    "validate_snapshot",
    "write_snapshot",
    "load_snapshot",
    "render_prometheus",
]


def validate_snapshot(snapshot: Mapping) -> dict:
    """Check the snapshot shape; returns it as a plain dict or raises ValueError."""
    if not isinstance(snapshot, Mapping):
        raise ValueError("metrics snapshot must be a JSON object")
    version = snapshot.get("v")
    if version != SNAPSHOT_VERSION:
        raise ValueError(f"unsupported metrics snapshot version: {version!r}")
    metrics = snapshot.get("metrics")
    if not isinstance(metrics, Mapping):
        raise ValueError("metrics snapshot missing 'metrics' object")
    for name, entry in metrics.items():
        if not isinstance(entry, Mapping) or "series" not in entry:
            raise ValueError(f"metric {name!r} entry missing 'series'")
    return {"v": version, "metrics": {k: dict(v) for k, v in metrics.items()}}


def write_snapshot(snapshot: Mapping, path: str | Path) -> Path:
    """Write a snapshot as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(validate_snapshot(snapshot), indent=2, sort_keys=True) + "\n")
    return path


def load_snapshot(path: str | Path) -> dict:
    """Load and validate a snapshot written by :func:`write_snapshot`."""
    return validate_snapshot(json.loads(Path(path).read_text()))


def _labels_text(labels: Mapping) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    """Label-value escaping: backslash, double quote, newline."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    """HELP-line escaping: only backslash and newline, quotes stay literal."""
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _num(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(snapshot: Mapping) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    snapshot = validate_snapshot(snapshot)
    lines: list[str] = []
    for name in sorted(snapshot["metrics"]):
        entry = snapshot["metrics"][name]
        kind = entry.get("type", "untyped")
        help_text = entry.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in entry.get("series", []):
            labels = dict(sample.get("labels", {}))
            if kind == "histogram":
                bounds = list(entry.get("buckets", []))
                counts = list(sample.get("counts", []))
                cumulative = 0
                for bound, count in zip(bounds, counts):
                    cumulative += count
                    bucket_labels = {**labels, "le": _num(bound)}
                    lines.append(
                        f"{name}_bucket{_labels_text(bucket_labels)} {_num(cumulative)}"
                    )
                total = int(sample.get("count", 0))
                inf_labels = {**labels, "le": "+Inf"}
                lines.append(f"{name}_bucket{_labels_text(inf_labels)} {_num(total)}")
                lines.append(f"{name}_sum{_labels_text(labels)} {_num(sample.get('sum', 0.0))}")
                lines.append(f"{name}_count{_labels_text(labels)} {_num(total)}")
            else:
                lines.append(
                    f"{name}{_labels_text(labels)} {_num(sample.get('value', 0.0))}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
