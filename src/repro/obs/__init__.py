"""`repro.obs` — observability for the serving path.

Three layers, importable separately and with no dependencies beyond the
standard library and :mod:`repro.events`:

* :mod:`repro.obs.metrics` — Counter/Gauge/Histogram registry with labeled
  series, a process-wide default, pre-bound zero-cost instruments, and
  snapshot + merge semantics that fold worker-process registries into the
  parent's (the cross-process pipeline under ``eblow batch --metrics-out``).
* :mod:`repro.obs.tracing` — ``span()`` context manager emitting ``span``
  events through the :mod:`repro.events` stream; :class:`TraceCollector`
  assembles them (including relayed worker spans) into one hierarchical
  trace.
* :mod:`repro.obs.export` / :mod:`repro.obs.report` — JSON snapshots,
  Prometheus text exposition, and the human per-stage time-budget report
  behind ``eblow stats`` / ``eblow trace``.

See ``docs/OBSERVABILITY.md`` for the metric catalogue and trace semantics.
"""

from repro.obs.export import (
    load_snapshot,
    render_prometheus,
    validate_snapshot,
    write_snapshot,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collecting,
    declare_counter,
    declare_gauge,
    declare_histogram,
    install,
    installed,
    uninstall,
)
from repro.obs.report import render_metrics_table, render_report, render_trace, time_budget
from repro.obs.tracing import Span, TraceCollector, current_span_id, record_span, span

__all__ = [
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "install",
    "uninstall",
    "installed",
    "collecting",
    "declare_counter",
    "declare_gauge",
    "declare_histogram",
    # tracing
    "span",
    "record_span",
    "current_span_id",
    "Span",
    "TraceCollector",
    # export / report
    "validate_snapshot",
    "write_snapshot",
    "load_snapshot",
    "render_prometheus",
    "time_budget",
    "render_trace",
    "render_metrics_table",
    "render_report",
]
