"""Hierarchical run tracing over the :class:`~repro.events.PlanEvent` stream.

A *span* is one timed region of a run — a batch, a pool dispatch, a job, a
planner stage, an LP solve.  :func:`span` opens one as a context manager;
on exit it emits a ``span`` event (``span_id`` / ``parent_id`` / ``name`` /
``seconds`` / ``pid`` plus free-form attributes) through the normal emitter,
so spans cost nothing when no sink is installed and ride every transport
events already use — the in-process :func:`~repro.events.emitting` scopes
and the cross-process :class:`~repro.runtime.pool.EventRelay`.

Parentage is a thread-local stack: nested ``span()`` blocks in one thread
parent naturally.  Spans emitted in a *worker* process arrive in the parent
with no in-process parent; :class:`TraceCollector` re-parents those foreign
roots on the consumer side — by ``job_id`` when a parent-side dispatch span
declared the jobs it was waiting on, under the single local root otherwise,
or under a synthetic root as a last resort.  Span ids embed the emitting
pid (``"<pid>-<counter>"``), so ids never collide across the relay and the
collector can tell local from foreign spans without extra bookkeeping.

Bit-identity: opening a span reads the monotonic clock and (only when
events are enabled) a process-local counter — it never touches a planner's
RNG, so traced runs produce byte-identical plans.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.events import PlanEvent, emit, events_enabled

__all__ = [
    "Span",
    "span",
    "record_span",
    "current_span_id",
    "TraceCollector",
]

_IDS = itertools.count(1)


class _SpanStack(threading.local):
    def __init__(self) -> None:
        self.ids: list[str] = []


_STACK = _SpanStack()


def current_span_id() -> str | None:
    """The id of the innermost open span in this thread, or None."""
    return _STACK.ids[-1] if _STACK.ids else None


def _next_id() -> str:
    return f"{os.getpid()}-{next(_IDS)}"


class span:
    """Context manager timing one region and emitting a ``span`` event.

    When no event sink is installed the whole context is a cheap no-op (two
    ``events_enabled()`` checks); otherwise the event is emitted on exit so
    its ``seconds`` is final.  Attribute values must be JSON-able.
    """

    __slots__ = ("name", "attrs", "span_id", "_begin")

    def __init__(self, name: str, **attrs) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id: str | None = None
        self._begin = 0.0

    def __enter__(self) -> "span":
        if events_enabled():
            self.span_id = _next_id()
            _STACK.ids.append(self.span_id)
            self._begin = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.span_id is None:
            return
        seconds = time.perf_counter() - self._begin
        if _STACK.ids and _STACK.ids[-1] == self.span_id:
            _STACK.ids.pop()
        parent = current_span_id()
        emit(
            "span",
            name=self.name,
            span_id=self.span_id,
            parent_id=parent,
            seconds=seconds,
            pid=os.getpid(),
            **self.attrs,
        )
        self.span_id = None


def record_span(name: str, seconds: float, **attrs) -> None:
    """Emit a leaf span for a region that was timed externally.

    For call sites that already measure their own duration (LP solves, stage
    timers): records a child of the current open span without pushing onto
    the stack.  No-op when no sink is installed.
    """
    if not events_enabled():
        return
    emit(
        "span",
        name=name,
        span_id=_next_id(),
        parent_id=current_span_id(),
        seconds=float(seconds),
        pid=os.getpid(),
        **attrs,
    )


@dataclass
class Span:
    """One node of an assembled trace tree."""

    name: str
    span_id: str
    parent_id: str | None
    seconds: float
    pid: int
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def child_seconds(self) -> float:
        return sum(c.seconds for c in self.children)

    @property
    def self_seconds(self) -> float:
        """Time not covered by child spans (clamped at zero)."""
        return max(0.0, self.seconds - self.child_seconds)

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "Span"]]:
        """Yield ``(depth, span)`` pairs depth-first, pre-order."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "seconds": self.seconds,
            "pid": self.pid,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }


_CORE_KEYS = frozenset({"name", "span_id", "parent_id", "seconds", "pid"})


class TraceCollector:
    """An event sink that assembles ``span`` events into a trace tree.

    Usable directly as a sink (``emitting(collector)`` / ``on_event=collector``
    — non-span events are ignored), or fed after the fact from recorded event
    dicts via :meth:`add_event_dict`.  Duplicate span ids are collapsed
    (last write wins), so the same event arriving through two nested scopes
    is harmless.
    """

    def __init__(self) -> None:
        self._spans: dict[str, Span] = {}
        self._order: list[str] = []
        self._lock = threading.Lock()
        self.pid = os.getpid()

    def __call__(self, event: PlanEvent) -> None:
        if event.type != "span":
            return
        payload = dict(event.payload)
        span_id = str(payload.get("span_id", ""))
        if not span_id:
            return
        node = Span(
            name=str(payload.get("name", "?")),
            span_id=span_id,
            parent_id=payload.get("parent_id"),
            seconds=float(payload.get("seconds", 0.0)),
            pid=int(payload.get("pid", 0)),
            attrs={k: v for k, v in payload.items() if k not in _CORE_KEYS},
        )
        with self._lock:
            if span_id not in self._spans:
                self._order.append(span_id)
            self._spans[span_id] = node

    def add_event_dict(self, record: Mapping) -> None:
        """Feed one recorded event dict (e.g. a manifest ``event`` record)."""
        if record.get("type") == "span":
            self(PlanEvent.from_dict(record))

    def add_events(self, records: Iterable[Mapping]) -> None:
        for record in records:
            self.add_event_dict(record)

    def spans(self) -> list[Span]:
        """All collected spans in arrival order (children lists unset)."""
        return [self._spans[sid] for sid in self._order]

    def tree(self, root_name: str = "trace") -> Span:
        """Assemble the trace tree, re-parenting cross-process roots.

        Rules, in order:

        1. A span whose ``parent_id`` resolves to a collected span becomes
           its child (normal in-process nesting — ids are pid-qualified, so
           this also covers worker-internal nesting).
        2. An orphan carrying a ``job_id`` attribute is re-parented under
           the span that declared that job id in its ``job_ids`` attribute
           (the pool's dispatch spans do) — this stitches worker job trees
           into the parent-side dispatch that awaited them.
        3. Remaining orphans attach under the single local-pid root if there
           is exactly one; otherwise everything hangs off a synthetic root
           named ``root_name`` whose duration spans its children.
        """
        with self._lock:
            nodes = {sid: self._spans[sid] for sid in self._order}
        for node in nodes.values():
            node.children = []

        dispatch_of_job: dict[str, Span] = {}
        for node in nodes.values():
            for job_id in node.attrs.get("job_ids") or ():
                dispatch_of_job.setdefault(str(job_id), node)

        roots: list[Span] = []
        for node in nodes.values():
            parent = nodes.get(node.parent_id) if node.parent_id else None
            if parent is None and "job_id" in node.attrs:
                parent = dispatch_of_job.get(str(node.attrs["job_id"]))
                if parent is node:
                    parent = None
            if parent is not None:
                parent.children.append(node)
            else:
                roots.append(node)

        if len(roots) == 1:
            return roots[0]
        local_roots = [r for r in roots if r.pid == self.pid]
        if len(local_roots) == 1:
            local = local_roots[0]
            for orphan in roots:
                if orphan is not local:
                    local.children.append(orphan)
            return local
        synthetic = Span(
            name=root_name,
            span_id="synthetic-root",
            parent_id=None,
            seconds=sum(r.seconds for r in roots),
            pid=self.pid,
            children=roots,
        )
        return synthetic
