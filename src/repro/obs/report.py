"""Human-readable rendering of traces and metrics snapshots.

:func:`render_trace` draws the span tree with per-node seconds and percent
of the root; :func:`time_budget` aggregates spans by name into the
per-stage table (total / self / count); :func:`render_report` combines a
trace with an optional metrics snapshot into the full text report the
``eblow trace`` verb prints.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.obs.tracing import Span

__all__ = [
    "time_budget",
    "render_trace",
    "render_metrics_table",
    "render_report",
]


def time_budget(root: Span) -> list[dict]:
    """Aggregate a trace by span name, ordered by total seconds descending.

    ``total_seconds`` sums each span's wall time, ``self_seconds`` the part
    not covered by its children — so the self column is a true budget: over
    a tree of perfectly nested spans the self-seconds sum to the root's
    duration, regardless of nesting depth.
    """
    rows: dict[str, dict] = {}
    for _, node in root.walk():
        row = rows.setdefault(
            node.name,
            {"name": node.name, "count": 0, "total_seconds": 0.0, "self_seconds": 0.0},
        )
        row["count"] += 1
        row["total_seconds"] += node.seconds
        row["self_seconds"] += node.self_seconds
    return sorted(rows.values(), key=lambda r: -r["total_seconds"])


def render_trace(root: Span, max_depth: int | None = None) -> str:
    """The span tree as an indented text outline."""
    base = max(root.seconds, 1e-12)
    lines = []
    for depth, node in root.walk():
        if max_depth is not None and depth > max_depth:
            continue
        attrs = ""
        interesting = {
            k: v
            for k, v in node.attrs.items()
            if k in ("planner", "case", "label", "stage", "jobs", "chunk", "worker_pid")
        }
        if interesting:
            attrs = "  " + " ".join(f"{k}={v}" for k, v in sorted(interesting.items()))
        lines.append(
            f"{'  ' * depth}{node.name:<{max(1, 28 - 2 * depth)}} "
            f"{node.seconds:9.4f}s  {100.0 * node.seconds / base:5.1f}%{attrs}"
        )
    return "\n".join(lines)


def _budget_table(rows: Iterable[Mapping]) -> str:
    lines = [f"{'stage':<28} {'count':>5} {'total s':>10} {'self s':>10} {'self %':>7}"]
    rows = list(rows)
    self_total = sum(r["self_seconds"] for r in rows) or 1e-12
    for row in rows:
        lines.append(
            f"{row['name']:<28} {row['count']:>5} {row['total_seconds']:>10.4f} "
            f"{row['self_seconds']:>10.4f} {100.0 * row['self_seconds'] / self_total:>6.1f}%"
        )
    return "\n".join(lines)


def render_metrics_table(snapshot: Mapping, limit: int | None = None) -> str:
    """A compact table of every series in a metrics snapshot."""
    lines = [f"{'metric':<44} {'labels':<36} {'value':>12}"]
    count = 0
    for name in sorted(snapshot.get("metrics", {})):
        entry = snapshot["metrics"][name]
        for sample in entry.get("series", []):
            if limit is not None and count >= limit:
                lines.append(f"… ({sum(len(e.get('series', [])) for e in snapshot['metrics'].values()) - count} more series)")
                return "\n".join(lines)
            labels = ",".join(
                f"{k}={v}" for k, v in sorted(sample.get("labels", {}).items())
            )
            if entry.get("type") == "histogram":
                n = int(sample.get("count", 0))
                total = float(sample.get("sum", 0.0))
                mean = total / n if n else 0.0
                value = f"n={n} mean={mean:.4f}s"
                lines.append(f"{name:<44} {labels:<36} {value:>12}")
            else:
                lines.append(
                    f"{name:<44} {labels:<36} {float(sample.get('value', 0.0)):>12g}"
                )
            count += 1
    return "\n".join(lines)


def render_report(
    root: Span | None,
    snapshot: Mapping | None = None,
    max_depth: int | None = None,
) -> str:
    """The full text report: trace tree, per-stage time budget, metrics."""
    sections: list[str] = []
    if root is not None:
        sections.append("== trace ==\n" + render_trace(root, max_depth=max_depth))
        budget = time_budget(root)
        covered = sum(r["self_seconds"] for r in budget)
        sections.append(
            "== time budget ==\n"
            + _budget_table(budget)
            + f"\n{'(stage total)':<28} {'':>5} {covered:>10.4f}s of {root.seconds:.4f}s wall "
            + f"({100.0 * covered / max(root.seconds, 1e-12):.1f}%)"
        )
    if snapshot is not None:
        sections.append("== metrics ==\n" + render_metrics_table(snapshot))
    return "\n\n".join(sections) + "\n"
