"""Crash-resumable, fault-tolerant batch execution.

Demonstrates the supervision layer of `repro.runtime` end to end:

1. run a supervised batch with a durable job-lease journal and a result
   store, but *crash* the driver halfway through (simulated by stopping the
   result iterator early);
2. resume from the journal — finished jobs are served from the store with
   identical job ids and bit-identical plans, only unfinished jobs re-run;
3. inject a worker-killing fault and watch the supervisor detect the death,
   re-queue the leased jobs with backoff, and still complete the batch with
   plans identical to a fault-free run.

Run with::

    PYTHONPATH=src python examples/resumable_batch.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.runtime import (
    FaultPlan,
    FaultSpec,
    JobJournal,
    PlannerSpec,
    ResultStore,
    SupervisorConfig,
    grid_jobs,
    iter_supervised,
    run_supervised,
)
from repro.runtime import faults


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="eblow-resume-"))
    store = ResultStore(workdir / "cache")
    journal_path = workdir / "run.journal.jsonl"

    planners = {
        "greedy": PlannerSpec("greedy-1d"),
        "e-blow": PlannerSpec("eblow-1d", {"deterministic": True}),
    }
    jobs = grid_jobs(["1T-1", "1T-2", "1T-3"], planners, scale=1.0)

    # --- 1. a batch that "crashes" halfway through -----------------------
    print(f"batch of {len(jobs)} jobs; driver dies after 2 results")
    stream = iter_supervised(
        jobs, max_workers=2, store=store, journal=journal_path
    )
    for _, result in zip(range(2), stream):
        print(f"  {result.case:>5} {result.label:<7} T={result.writing_time:7.0f}")
    stream.close()  # simulate the crash: the journal + store survive

    state = JobJournal.replay(journal_path)
    done = sum(1 for entry in state.values() if entry["state"] == "done")
    print(f"journal after crash: {done} done, {len(state) - done} pending")

    # --- 2. resume: only unfinished jobs re-execute ----------------------
    journal = JobJournal(journal_path, resume=True)
    resumed = run_supervised(
        jobs, max_workers=2, store=store, journal=journal, resume=True
    )
    hits = sum(1 for r in resumed if r.cache_hit)
    print(f"resumed run: {len(resumed)} results, {hits} served from the store")
    assert all(r.ok for r in resumed)

    # --- 3. chaos: SIGKILL a worker mid-job, recover, same plans ---------
    print("injecting a one-shot worker kill into a fresh batch")
    scratch = workdir / "faults"
    scratch.mkdir()
    plan = FaultPlan(
        specs=(FaultSpec(kind="kill_worker", match="1T-2", once=True, seconds=0.1),),
        scratch=str(scratch),
    )
    config = SupervisorConfig(heartbeat_interval=0.1, backoff_base=0.05)
    with faults.injecting(plan):
        chaotic = run_supervised(jobs, max_workers=2, config=config)
    for clean, survived in zip(resumed, chaotic):
        assert survived.ok
        assert clean.job_id == survived.job_id
        assert clean.writing_time == survived.writing_time
    retried = [r for r in chaotic if r.attempts > 1]
    print(
        f"worker killed and recovered: {len(retried)} job(s) took a second "
        f"attempt, all {len(chaotic)} plans identical to the fault-free run"
    )


if __name__ == "__main__":
    main()
