"""Batch-serve a suite of instances through the planning runtime.

Demonstrates the `repro.runtime` subsystem end to end: build a cases x
planners grid, fan it out over one **warm worker pool** with a result store
and a telemetry manifest, re-run it to show cache hits (same pool, zero
respawn), then race a portfolio of planner configs on a single instance.

Inline instances would ship through the pool's shared-memory arena exactly
once; named cases (used here) travel as thin descriptors and are memoised
by digest inside each worker.

Run with::

    PYTHONPATH=src python examples/batch_serving.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import repro
from repro.runtime import (
    PlannerSpec,
    ResultStore,
    Telemetry,
    grid_jobs,
    run_jobs,
    run_portfolio,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="eblow-batch-"))
    store = ResultStore(workdir / "cache")
    telemetry = Telemetry(workdir / "manifest.jsonl")

    planners = {
        "greedy": PlannerSpec("greedy-1d"),
        "e-blow": PlannerSpec("eblow-1d", {"deterministic": True}),
    }
    jobs = grid_jobs(["1T-1", "1T-2", "1T-3", "1T-4", "1T-5"], planners, scale=1.0)

    with repro.planner_pool(max_workers=2) as pool:
        print(f"cold batch: {len(jobs)} jobs on 2 workers")
        for result in run_jobs(jobs, pool=pool, store=store, telemetry=telemetry):
            print(
                f"  {result.case:>5} {result.label:<7} T={result.writing_time:7.0f} "
                f"chars={result.num_selected:2d} pid={result.worker_pid}"
            )

        print("warm batch: same grid, same pool, served from the store")
        for result in run_jobs(jobs, pool=pool, store=store, telemetry=telemetry):
            assert result.cache_hit
        print(f"  summary: {telemetry.summary()}")

    print("portfolio race on 1M-1 (scaled down, straggler-aware)")
    # straggler_grace consumes the entrants' PlanEvent streams: once the
    # first entrant finishes, the rest get 10s of grace, after which any
    # entrant whose reported incumbent does not beat the winner is cancelled.
    incumbents = []
    outcome = run_portfolio(
        "1M-1",
        {
            "greedy": PlannerSpec("greedy-1d"),
            "e-blow-0": PlannerSpec("eblow-1d", {"ablated": True}),
            "e-blow-1": PlannerSpec("eblow-1d", {"deterministic": True}),
        },
        scale=0.05,
        max_workers=3,
        straggler_grace=10.0,
        on_event=lambda e: incumbents.append(e) if e.type == "incumbent" else None,
    )
    for result in outcome.results:
        marker = "*" if result is outcome.winner else " "
        print(f"  {marker} {result.label:<8} T={result.writing_time:7.0f} "
              f"({result.wall_seconds:.2f}s)")
    for label in outcome.cancelled:
        print(f"    {label:<8} cancelled (straggler)")
    print(f"  incumbent events observed: {len(incumbents)} "
          "(1D entrants report none; 2D annealers stream their best-so-far cost)")
    print(f"manifest: {telemetry.path}")


if __name__ == "__main__":
    main()
