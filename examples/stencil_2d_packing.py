"""2DOSP: pack a stencil with non-uniform characters and draw it as ASCII art.

Runs the E-BLOW 2D flow (pre-filter, KD-tree clustering, fixed-outline
simulated annealing) through the ``repro.plan`` façade on a synthetic 2D
instance, compares it against the greedy shelf packer, and renders the
final stencil occupancy.

Run with::

    python examples/stencil_2d_packing.py
"""

from __future__ import annotations

import repro
from repro import generate_2d_instance


def ascii_stencil(plan, columns: int = 64, rows: int = 24) -> str:
    """Coarse ASCII rendering of which stencil area is occupied."""
    instance = plan.instance
    grid = [["." for _ in range(columns)] for _ in range(rows)]
    for placement in plan.placements2d:
        ch = instance.character(placement.name)
        x0 = int(placement.x / instance.stencil.width * columns)
        x1 = int((placement.x + ch.width) / instance.stencil.width * columns)
        y0 = int(placement.y / instance.stencil.height * rows)
        y1 = int((placement.y + ch.height) / instance.stencil.height * rows)
        for row in range(max(y0, 0), min(y1, rows)):
            for col in range(max(x0, 0), min(x1, columns)):
                grid[row][col] = "#"
    return "\n".join("".join(line) for line in reversed(grid))


def main() -> None:
    instance = generate_2d_instance(
        num_characters=90,
        num_regions=4,
        seed=7,
        stencil_width=320.0,
        stencil_height=320.0,
        name="example-2d",
    )
    print(f"instance {instance.name}: {instance.num_characters} candidates, "
          f"stencil {instance.stencil.width:.0f} x {instance.stencil.height:.0f}")

    greedy = repro.plan(instance, planner="greedy-2d")

    # The default configuration sizes the annealing schedule from the number
    # of clustered blocks; only the seed is pinned for reproducibility.
    # The result's event stream records how the annealer converged.
    eblow = repro.plan(instance, planner="eblow-2d", seed=11)
    incumbents = [e for e in eblow.events if e.type == "incumbent"]

    print("\n                      greedy shelves   E-BLOW")
    print(f"characters on stencil {greedy.num_selected:>14} {eblow.num_selected:>9}")
    print(f"system writing time   {greedy.writing_time:>14.0f} {eblow.writing_time:>9.0f}")
    print(f"runtime (s)           {greedy.runtime_seconds:>14.2f} "
          f"{eblow.runtime_seconds:>9.2f}")
    print(f"clusters formed       {'-':>14} {eblow.stats['num_clusters']:>9}")
    print(f"incumbent updates     {'-':>14} {len(incumbents):>9}")

    print("\nE-BLOW stencil occupancy (each '#' is occupied area):")
    print(ascii_stencil(eblow.plan_object(instance)))


if __name__ == "__main__":
    main()
