"""Regenerate the paper's comparison tables from the command line.

This is the scripted equivalent of the ``eblow table3 / table4 / table5`` CLI
commands: it runs every algorithm of Tables 3-5 on (scaled-down) versions of
the paper's benchmark suites and prints tables in the paper's layout,
including the "Avg." and "Ratio" rows.

Run with::

    python examples/reproduce_paper_tables.py            # quick, scaled down
    REPRO_SCALE=0.2 python examples/reproduce_paper_tables.py
"""

from __future__ import annotations

import time

from repro.evaluation import format_comparison_table
from repro.experiments import run_table3, run_table4, run_table5
from repro.workloads import default_scale


def main() -> None:
    scale = default_scale()
    print(f"running with instance scale {scale:.2f} "
          f"(set REPRO_PAPER_SCALE=1 for full-size instances)\n")

    start = time.perf_counter()
    print("=== Table 3: 1DOSP comparison (subset of cases) ===")
    table3 = run_table3(cases=["1D-1", "1D-2", "1M-1", "1M-2"], scale=scale)
    print(format_comparison_table(table3, reference="e-blow"))

    print("\n=== Table 4: 2DOSP comparison (subset of cases) ===")
    table4 = run_table4(cases=["2D-1", "2M-1"], scale=scale)
    print(format_comparison_table(table4, reference="e-blow"))

    print("\n=== Table 5: exact ILP vs E-BLOW (tiny instances) ===")
    table5 = run_table5(cases_1d=["1T-1", "1T-2"], cases_2d=["2T-1"], time_limit=20)
    print(format_comparison_table(table5, reference="e-blow"))

    print(f"\ntotal time: {time.perf_counter() - start:.1f} s")
    print("The full 12-case tables are produced by the benchmark harness "
          "(pytest benchmarks/ --benchmark-only) or the eblow CLI.")


if __name__ == "__main__":
    main()
