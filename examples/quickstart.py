"""Quickstart: plan a stencil for a small MCC system with ``repro.plan``.

Generates a synthetic 1DOSP instance with 4 CP regions, runs the E-BLOW
planner through the one-call planning façade — streaming its progress
events as they happen — and prints the resulting throughput improvement.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import repro


def main() -> None:
    # An MCC system with 4 character projections sharing one stencil design.
    instance = repro.generate_1d_instance(
        num_characters=150,
        num_regions=4,
        seed=42,
        stencil_width=400.0,
        stencil_height=400.0,
        name="quickstart-mcc",
    )
    print(f"instance: {instance.name}")
    print(f"  character candidates : {instance.num_characters}")
    print(f"  CP regions           : {instance.num_regions}")
    print(f"  stencil              : {instance.stencil.width:.0f} x {instance.stencil.height:.0f} um")
    print(f"  pure-VSB writing time: {max(instance.vsb_times()):.0f} shots")

    # One call: the planner streams PlanEvents (stages, LP solves, rounding
    # iterations) while it works, and the result carries everything —
    # metrics, the serialized plan, stats, and the captured event stream.
    print("\nplanning (live event stream)")
    result = repro.plan(
        instance,
        planner="eblow",  # bare family name: dispatches on the instance kind
        on_event=lambda event: print("  " + event.describe()),
    )

    plan = result.plan_object(instance)
    report = repro.evaluate_plan(plan)

    print("\nE-BLOW plan")
    print(f"  characters on stencil: {result.num_selected}")
    print(f"  system writing time  : {result.writing_time:.0f} shots")
    print(f"  improvement vs VSB   : {report.improvement_ratio:.1%}")
    print(f"  bottleneck region    : w{report.bottleneck_region + 1}")
    print(f"  runtime              : {result.runtime_seconds:.2f} s")
    print(f"  LP iterations        : {result.stats['lp_iterations']}")
    print(f"  events captured      : {result.event_counts()}")

    print("\nper-region writing times:")
    for region, time in zip(instance.regions, report.region_times):
        print(f"  {region.name}: {time:.0f}")

    # The plan is a real geometric object: every character has a row and an x
    # position, and the placement has been validated against the outline.
    first_row = plan.rows_as_names()[0]
    print(f"\nfirst stencil row ({len(first_row)} characters): {first_row[:8]} ...")


if __name__ == "__main__":
    main()
