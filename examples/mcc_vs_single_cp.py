"""Why MCC-aware planning matters: min-max vs total-reduction objectives.

The paper's motivation for a new OSP formulation is that an MCC system's
throughput is limited by its *slowest* region, so the stencil must balance
all regions instead of just maximizing the total shot-count reduction.  This
example plans the same 10-region instance with

* the two-step heuristic of [24] (optimizes total reduction), and
* E-BLOW (optimizes the max over regions, re-weighting profits as it goes),

and prints the per-region writing times side by side.

Run with::

    python examples/mcc_vs_single_cp.py
"""

from __future__ import annotations

from repro import evaluate_plan
from repro.baselines import Heuristic1DPlanner
from repro.core.onedim import EBlow1DPlanner
from repro.workloads import build_instance


def describe(label: str, report) -> None:
    print(f"\n{label}")
    print(f"  system writing time (max over regions): {report.total:.0f}")
    print(f"  characters on stencil                 : {report.num_selected}")
    bars = ""
    worst = max(report.region_times)
    for index, time in enumerate(report.region_times):
        bar = "#" * int(40 * time / worst)
        bars += f"  w{index + 1:<2} {time:>10.0f} {bar}\n"
    print(bars, end="")


def main() -> None:
    # 1M-2 is one of the paper's MCC benchmark cases (scaled down here).
    instance = build_instance("1M-2", scale=0.12)
    print(f"instance {instance.name}: {instance.num_characters} candidates, "
          f"{instance.num_regions} CP regions")

    heuristic_plan = Heuristic1DPlanner().plan(instance)
    eblow_plan = EBlow1DPlanner().plan(instance)

    describe("two-step heuristic [24] (total-reduction objective)",
             evaluate_plan(heuristic_plan))
    describe("E-BLOW (min-max objective, Eqn. 1)", evaluate_plan(eblow_plan))

    gain = (
        evaluate_plan(heuristic_plan).total - evaluate_plan(eblow_plan).total
    ) / evaluate_plan(heuristic_plan).total
    print(f"\nE-BLOW reduces the MCC system writing time by {gain:.1%} on this instance.")


if __name__ == "__main__":
    main()
