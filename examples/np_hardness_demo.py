"""NP-hardness constructions of Section 2.2, end to end.

Walks the full reduction chain of the paper's hardness proof on the concrete
examples it uses:

1. the 3SAT formula of Eqn. (9) is converted to a Bounded Subset Sum (BSS)
   instance (Fig. 13),
2. a BSS witness is found and decoded back into a satisfying assignment,
3. the BSS instance of Fig. 3 is converted into a single-row 1DOSP instance,
   and the correspondence between "subset sums to s" and "characters fit the
   stencil with low writing time" is verified with the actual planner data
   structures.

Run with::

    python examples/np_hardness_demo.py
"""

from __future__ import annotations

from repro.model import StencilPlan, system_writing_time
from repro.nphard import (
    BSSInstance,
    Clause,
    SatInstance,
    bss_to_osp,
    decode_assignment,
    evaluate_sat,
    minimum_packing_length,
    sat_to_bss,
    solve_subset_sum,
)


def step_1_sat_to_bss() -> None:
    print("Step 1: 3SAT -> Bounded Subset Sum (Eqn. 9 / Fig. 13)")
    formula = SatInstance(
        num_variables=4,
        clauses=(
            Clause(literals=((0, True), (2, False), (3, False))),   # y1 | !y3 | !y4
            Clause(literals=((0, False), (1, True), (3, False))),   # !y1 | y2 | !y4
        ),
    )
    bss, index = sat_to_bss(formula)
    print(f"  numbers generated : {len(bss.numbers)} (2n + 3m)")
    print(f"  target s          : {bss.target}")
    witness = solve_subset_sum(list(bss.numbers), bss.target)
    assert witness is not None
    assignment = decode_assignment(formula, index, witness)
    print(f"  decoded assignment: {['y%d=%d' % (i + 1, int(v)) for i, v in enumerate(assignment)]}")
    assert evaluate_sat(formula, assignment)
    print("  the decoded assignment satisfies the formula\n")


def step_2_bss_to_osp() -> None:
    print("Step 2: BSS -> 1DOSP (Fig. 3)")
    bss = BSSInstance(numbers=(1100, 1200, 2000), target=2300)
    reduction = bss_to_osp(bss)
    instance = reduction.instance
    print(f"  stencil length M + s = {instance.stencil.width:.0f}")
    for ch in instance.characters:
        print(
            f"  character {ch.name}: width {ch.width:.0f}, blanks {ch.blank_left:.0f}, "
            f"VSB time {ch.vsb_shots:.0f}"
        )

    # The YES-witness {1100, 1200} corresponds to characters c1 and c2.
    selection = ["c0", "c1", "c2"]
    packing = minimum_packing_length(
        [(instance.character(n).width, instance.character(n).symmetric_hblank) for n in selection]
    )
    plan = StencilPlan.from_rows(instance, [selection])
    plan.validate()
    print(f"  minimum packing of {{c0, c1, c2}}: {packing:.0f} (fits exactly)")
    print(f"  writing time with that stencil   : "
          f"{system_writing_time(instance, selection):.0f} = sum(x_i) - s")

    # The NO-combination {1100, 2000} does not fit.
    bad = ["c0", "c1", "c3"]
    bad_packing = minimum_packing_length(
        [(instance.character(n).width, instance.character(n).symmetric_hblank) for n in bad]
    )
    print(f"  minimum packing of {{c0, c1, c3}}: {bad_packing:.0f} "
          f"(> {instance.stencil.width:.0f}, does not fit)")


def main() -> None:
    step_1_sat_to_bss()
    step_2_bss_to_osp()


if __name__ == "__main__":
    main()
