"""Serving: host the planning daemon and watch identical requests coalesce.

Starts a :class:`repro.serve.PlanServer` on a background thread (exactly
what ``eblow serve`` runs as a process), then hits it with a burst of
identical plan requests from concurrent clients.  The daemon keys every
in-flight execution by its content-hash job id, so the burst collapses
onto ONE pool execution — every client still receives the bit-identical
result — and a resubmission after completion is answered straight from
the on-disk result store.

Run with::

    python examples/plan_serving.py
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

from repro.serve import ServeClient, ServeConfig, start_in_thread

CASE, SCALE = "1T-1", 0.2


def main() -> None:
    scratch = Path(tempfile.mkdtemp(prefix="eblow-serving-"))
    config = ServeConfig(
        socket=str(scratch / "serve.sock"),
        workers=2,
        cache_dir=str(scratch / "cache"),
        metrics_out=str(scratch / "metrics.json"),
    )
    with start_in_thread(config) as handle:
        print(f"daemon listening on {handle.address}")

        # A burst of identical requests from 6 concurrent clients: the
        # daemon coalesces them onto a single execution.
        outcomes: list[str] = []
        results = []

        def submit() -> None:
            with ServeClient(socket=handle.address) as client:
                results.append(client.plan(CASE, scale=SCALE))
                outcomes.append(client.last_outcome)

        threads = [threading.Thread(target=submit) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        print(f"burst outcomes: {sorted(outcomes)}")
        identical = all(r.to_dict() == results[0].to_dict() for r in results)
        print(f"all {len(results)} results bit-identical: {identical}")

        # Resubmit after completion: served from the result store, no pool.
        with ServeClient(socket=handle.address) as client:
            again = client.plan(CASE, scale=SCALE)
            print(f"resubmit: outcome={client.last_outcome}, "
                  f"cache_hit={again.cache_hit}")

            # Live daemon state: request counters by outcome, store hit rate.
            status = client.status()
            print(f"requests: { {k: v for k, v in status['requests'].items() if v} }")
            print(f"store hit rate: {status['store']['hit_rate']:.0%}")

    print(f"daemon drained; metrics snapshot at {config.metrics_out}")


if __name__ == "__main__":
    main()
